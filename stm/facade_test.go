package stm_test

import (
	"bytes"
	"sync"
	"testing"

	"repro/stm"
)

// TestUnPartitionRestoresSingleGlobal checks the partition→unpartition
// round trip: after UnPartition every address routes to the global
// partition again and transactions still run.
func TestUnPartitionRestoresSingleGlobal(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	rt.StartProfiling()
	sA := rt.RegisterSite("up.a")
	sB := rt.RegisterSite("up.b")
	th := rt.MustAttach()
	var a, b stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(sA, 2)
		b = tx.Alloc(sB, 2)
		tx.StoreAddr(a, a+1) // self-edges so both sites appear in the graph
		tx.StoreAddr(b, b+1)
	})
	rt.Detach(th)
	if _, err := rt.StopProfilingAndPartition(); err != nil {
		t.Fatal(err)
	}
	if rt.NumPartitions() < 2 {
		t.Fatalf("expected >1 partitions, got %d", rt.NumPartitions())
	}
	if err := rt.UnPartition(); err != nil {
		t.Fatal(err)
	}
	if got := rt.PartitionOf(a); got != stm.GlobalPartition {
		t.Fatalf("a in partition %d after UnPartition", got)
	}
	if got := rt.PartitionOf(b); got != stm.GlobalPartition {
		t.Fatalf("b in partition %d after UnPartition", got)
	}
	th = rt.MustAttach()
	defer rt.Detach(th)
	th.Atomic(func(tx *stm.Tx) { tx.Store(a, 42) })
	th.Atomic(func(tx *stm.Tx) {
		if tx.Load(a) != 42 {
			t.Error("lost store after UnPartition")
		}
	})
}

// TestPartitionNamesAndConfig covers the read-side inspection surface.
func TestPartitionNamesAndConfig(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	rt.RegisterSite("pn.x")
	rt.RegisterSite("pn.y")
	if _, err := rt.ManualPartition(map[string][]string{
		"left":  {"pn.x"},
		"right": {"pn.y"},
	}); err != nil {
		t.Fatal(err)
	}
	names := rt.PartitionNames()
	if len(names) != rt.NumPartitions() {
		t.Fatalf("names %d != partitions %d", len(names), rt.NumPartitions())
	}
	foundLeft := false
	for id := range names {
		cfg, err := rt.PartitionConfig(stm.PartID(id))
		if err != nil {
			t.Fatalf("PartitionConfig(%d): %v", id, err)
		}
		if cfg.String() == "" {
			t.Fatal("empty config string")
		}
		if names[id] == "left" {
			foundLeft = true
		}
	}
	if !foundLeft {
		t.Fatalf("manual group name not in %v", names)
	}
	if _, err := rt.PartitionConfig(stm.PartID(99)); err == nil {
		t.Fatal("PartitionConfig(99) succeeded")
	}
}

// TestManualPartitionErrors covers the error paths of the manual grouping
// API.
func TestManualPartitionErrors(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 14})
	if _, err := rt.ManualPartition(map[string][]string{"g": {"nosuch.site"}}); err == nil {
		t.Fatal("unknown site accepted")
	}
	rt.RegisterSite("mp.a")
	if _, err := rt.ManualPartition(map[string][]string{
		"g1": {"mp.a"},
		"g2": {"mp.a"},
	}); err == nil {
		t.Fatal("site claimed by two groups accepted")
	}
}

// TestHeapInUseBlocksGrows verifies the heap accounting surface.
func TestHeapInUseBlocksGrows(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, BlockShift: 8})
	before := rt.HeapInUseBlocks()
	site := rt.RegisterSite("hb")
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.Atomic(func(tx *stm.Tx) {
		for i := 0; i < 10; i++ {
			tx.Alloc(site, 200) // most of a block each
		}
	})
	if after := rt.HeapInUseBlocks(); after <= before {
		t.Fatalf("blocks in use did not grow: %d -> %d", before, after)
	}
}

// TestAtomicErrPropagatesUserError checks user errors abort and surface.
func TestAtomicErrPropagatesUserError(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 14})
	th := rt.MustAttach()
	defer rt.Detach(th)
	site := rt.RegisterSite("ae")
	var a stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(site, 1)
		tx.Store(a, 1)
	})
	sentinel := errSentinel{}
	err := th.AtomicErr(func(tx *stm.Tx) error {
		tx.Store(a, 999)
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	th.Atomic(func(tx *stm.Tx) {
		if got := tx.Load(a); got != 1 {
			t.Fatalf("error abort leaked store: %d", got)
		}
	})
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

// TestReconfigureWhileDetachedThreads reconfigures with no attached
// threads (quiescence must not hang on an empty thread set).
func TestReconfigureWhileDetachedThreads(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 14})
	cfg := stm.DefaultPartConfig()
	cfg.Read = stm.VisibleReads
	if err := rt.Reconfigure(stm.GlobalPartition, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := rt.PartitionConfig(stm.GlobalPartition)
	if err != nil {
		t.Fatal(err)
	}
	if got.Read != stm.VisibleReads {
		t.Fatalf("read mode = %v", got.Read)
	}
}

// TestTracingLifecycle checks StartTracing records attempts and
// StopTracing detaches cleanly.
func TestTracingLifecycle(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 14})
	site := rt.RegisterSite("tl")
	th := rt.MustAttach()
	defer rt.Detach(th)
	rec := rt.StartTracing(128)
	var a stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(site, 1)
		tx.Store(a, 0)
	})
	for i := 0; i < 20; i++ {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	rt.StopTracing()
	if got := rec.Commits(); got != 21 {
		t.Fatalf("traced commits = %d, want 21", got)
	}
	if len(rec.Snapshot()) != 21 {
		t.Fatalf("snapshot = %d events", len(rec.Snapshot()))
	}
	before := rec.Len()
	th.Atomic(func(tx *stm.Tx) { tx.Store(a, 0) })
	if rec.Len() != before {
		t.Fatal("recorder still attached after StopTracing")
	}
}

// TestPlanPersistenceAcrossRuntimes saves a discovered-and-specialized
// plan from one runtime and warm-starts a second runtime with it: the
// partitioning and the tuned configuration must carry over.
func TestPlanPersistenceAcrossRuntimes(t *testing.T) {
	// First run: discover, specialize, save.
	rt1 := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	rt1.StartProfiling()
	for _, s := range []string{"pp.a.head", "pp.a.node", "pp.b.head", "pp.b.node"} {
		rt1.RegisterSite(s)
	}
	th := rt1.MustAttach()
	th.Atomic(func(tx *stm.Tx) {
		sa, _ := rt1.Sites().Lookup("pp.a.head")
		san, _ := rt1.Sites().Lookup("pp.a.node")
		sb, _ := rt1.Sites().Lookup("pp.b.head")
		sbn, _ := rt1.Sites().Lookup("pp.b.node")
		a := tx.Alloc(sa, 1)
		an := tx.Alloc(san, 1)
		b := tx.Alloc(sb, 1)
		bn := tx.Alloc(sbn, 1)
		tx.StoreAddr(a, an)
		tx.StoreAddr(b, bn)
	})
	rt1.Detach(th)
	plan, err := rt1.StopProfilingAndPartition()
	if err != nil {
		t.Fatal(err)
	}
	// "Tune" partition 1 by hand (stands in for a tuner run).
	cfg, err := rt1.PartitionConfig(stm.PartID(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Read = stm.VisibleReads
	cfg.CM = stm.CMTimestamp
	if err := rt1.Reconfigure(stm.PartID(1), cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt1.SavePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}

	// Second run: same sites (fresh runtime), load the plan.
	rt2 := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	for _, s := range []string{"pp.a.head", "pp.a.node", "pp.b.head", "pp.b.node"} {
		rt2.RegisterSite(s)
	}
	loaded, err := rt2.LoadAndInstallPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load failed: %v\nsaved: %s", err, buf.String())
	}
	if loaded.NumPartitions() != plan.NumPartitions() {
		t.Fatalf("partitions %d != %d", loaded.NumPartitions(), plan.NumPartitions())
	}
	// The tuned config must have carried over to the matching partition.
	carried := false
	for id := 0; id < rt2.NumPartitions(); id++ {
		c, err := rt2.PartitionConfig(stm.PartID(id))
		if err != nil {
			t.Fatal(err)
		}
		if c.Read == stm.VisibleReads && c.CM == stm.CMTimestamp {
			carried = true
		}
	}
	if !carried {
		t.Fatalf("tuned configuration lost across runtimes\nsaved: %s", buf.String())
	}
	// And the reloaded runtime must still run transactions.
	th2 := rt2.MustAttach()
	defer rt2.Detach(th2)
	site, _ := rt2.Sites().Lookup("pp.a.node")
	th2.Atomic(func(tx *stm.Tx) {
		a := tx.Alloc(site, 1)
		tx.Store(a, 42)
		if tx.Load(a) != 42 {
			t.Error("lost store after plan reload")
		}
	})
}

// TestManyThreadsAttachDetachChurn churns attach/detach concurrently with
// running transactions.
func TestManyThreadsAttachDetachChurn(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 18})
	site := rt.RegisterSite("churn")
	setup := rt.MustAttach()
	var a stm.Addr
	setup.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(site, 1)
		tx.Store(a, 0)
	})
	rt.Detach(setup)
	const workers, rounds, perRound = 8, 20, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				th := rt.MustAttach()
				for i := 0; i < perRound; i++ {
					th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
				}
				rt.Detach(th)
			}
		}()
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.Atomic(func(tx *stm.Tx) {
		if got := tx.Load(a); got != workers*rounds*perRound {
			t.Fatalf("counter = %d, want %d", got, workers*rounds*perRound)
		}
	})
}

// TestTimeBaseFacade covers the time-base surface of the public API:
// construction-time selection, live switching, and the clock statistics
// that expose per-partition commit counters.
func TestTimeBaseFacade(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, TimeBase: stm.TimeBasePartitionLocal})
	if rt.TimeBase() != stm.TimeBasePartitionLocal {
		t.Fatalf("TimeBase = %v", rt.TimeBase())
	}

	sA := rt.RegisterSite("tbf.a")
	sB := rt.RegisterSite("tbf.b")
	th := rt.MustAttach()
	var a, b stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(sA, 1)
		b = tx.Alloc(sB, 1)
		tx.Store(a, 10)
		tx.Store(b, 20)
	})
	rt.Detach(th)
	if _, err := rt.ManualPartition(map[string][]string{"pa": {"tbf.a"}, "pb": {"tbf.b"}}); err != nil {
		t.Fatal(err)
	}

	cs := rt.ClockStats()
	if cs.Mode != stm.TimeBasePartitionLocal {
		t.Fatalf("ClockStats.Mode = %v", cs.Mode)
	}
	if len(cs.Parts) != rt.NumPartitions() {
		t.Fatalf("%d clock counters for %d partitions", len(cs.Parts), rt.NumPartitions())
	}

	// Partition-confined updates move only their own counters; the
	// cross-partition epoch stays put.
	th = rt.MustAttach()
	for i := 0; i < 50; i++ {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
		th.Atomic(func(tx *stm.Tx) { tx.Store(b, tx.Load(b)+1) })
	}
	cs2 := rt.ClockStats()
	if cs2.SharedRMWs != cs.SharedRMWs {
		t.Fatalf("single-partition commits performed %d shared RMWs", cs2.SharedRMWs-cs.SharedRMWs)
	}

	// Live switch back to the global counter: data intact, time monotone.
	before := cs2
	rt.SetTimeBase(stm.TimeBaseGlobal)
	if rt.TimeBase() != stm.TimeBaseGlobal {
		t.Fatalf("TimeBase = %v after switch", rt.TimeBase())
	}
	after := rt.ClockStats()
	for _, v := range before.Parts {
		if after.Parts[0] < v {
			t.Fatalf("migration moved time backwards: %v -> %v", before.Parts, after.Parts)
		}
	}
	th.Atomic(func(tx *stm.Tx) {
		if got := tx.Load(a) + tx.Load(b); got != 10+20+100 {
			t.Fatalf("sum = %d", got)
		}
	})
	rt.Detach(th)
}
