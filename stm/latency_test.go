package stm_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/workload"
	"repro/stm"
)

// TestLatencyStatsOpenLoopContention is the end-to-end acceptance check
// for the latency plumbing: an open-loop run under saturating write
// contention (every transaction increments one shared counter, offered
// rate far above capacity) must surface a full p50/p99/p999 picture
// through every layer — Runtime.LatencyStats, per-partition
// PartStats.Latency, the trace recorder's commit histogram, and the
// trace Summary's "latency:" line.
func TestLatencyStatsOpenLoopContention(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, LatencyStats: true})
	if !rt.LatencyTracking() {
		t.Fatal("Config.LatencyStats did not enable tracking")
	}
	var a stm.Addr
	if err := rt.Run(func(tx *stm.Tx) error {
		a = tx.Alloc(stm.SiteID(0), 1)
		tx.Store(a, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rec := rt.StartTracing(1 << 14)
	res := bench.RunOpenLoop(rt, bench.OpenLoopConfig{
		Threads: 4,
		Rate:    2_000_000, // far beyond one contended counter's capacity
		Warmup:  10 * time.Millisecond,
		Measure: 100 * time.Millisecond,
		Seed:    5,
	}, func(th *stm.Thread, rng *workload.Rng, i uint64) {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	})
	rt.StopTracing()
	if res.Ops == 0 {
		t.Fatal("no measured ops")
	}

	// Layer 1: the runtime-wide histogram.
	lat := rt.LatencyStats()
	if lat.Count() == 0 {
		t.Fatal("Runtime.LatencyStats empty with tracking on")
	}
	p50, p99, p999 := lat.Quantile(0.50), lat.Quantile(0.99), lat.Quantile(0.999)
	if p50 == 0 || p50 > p99 || p99 > p999 || p999 > lat.Max() {
		t.Fatalf("quantiles not ordered: p50=%d p99=%d p999=%d max=%d", p50, p99, p999, lat.Max())
	}

	// Layer 2: the per-partition breakdown the runtime histogram merges.
	var perPart uint64
	for _, ps := range rt.Stats() {
		perPart += ps.Latency.Count()
	}
	if perPart != lat.Count() {
		t.Fatalf("per-partition latency samples %d != runtime-wide %d", perPart, lat.Count())
	}

	// Layer 3: the trace recorder's own commit histogram — one sample per
	// committed attempt it saw.
	if cl := rec.CommitLatency(); cl.Count() != rec.Commits() {
		t.Fatalf("trace commit-latency samples %d != recorded commits %d", cl.Count(), rec.Commits())
	}
	for _, ev := range rec.Snapshot() {
		if ev.DurationNs == 0 {
			t.Fatal("traced attempt with zero duration: latency not plumbed into AttemptEvent")
		}
	}

	// Layer 4: the human-facing summary line.
	sum := rec.Summary()
	if !strings.Contains(sum, "latency: commit") {
		t.Fatalf("trace summary lacks latency line:\n%s", sum)
	}
	for _, want := range []string{"p50=", "p99=", "p999=", "max="} {
		if !strings.Contains(sum, want) {
			t.Fatalf("trace summary latency line lacks %q:\n%s", want, sum)
		}
	}
}

// TestLatencyTrackingToggle: recording must follow the live switch — and
// stay off by default, because the default hot path pays for none of
// this.
func TestLatencyTrackingToggle(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	if rt.LatencyTracking() {
		t.Fatal("latency tracking on by default")
	}
	var a stm.Addr
	inc := func(tx *stm.Tx) error {
		if a == stm.Nil {
			a = tx.Alloc(stm.SiteID(0), 1)
		}
		tx.Store(a, tx.Load(a)+1)
		return nil
	}
	for i := 0; i < 100; i++ {
		if err := rt.Run(inc); err != nil {
			t.Fatal(err)
		}
	}
	if n := rt.LatencyStats().Count(); n != 0 {
		t.Fatalf("histogram has %d samples with tracking off", n)
	}
	rt.SetLatencyTracking(true)
	for i := 0; i < 100; i++ {
		if err := rt.Run(inc); err != nil {
			t.Fatal(err)
		}
	}
	on := rt.LatencyStats().Count()
	if on == 0 {
		t.Fatal("histogram empty after tracking enabled")
	}
	rt.SetLatencyTracking(false)
	for i := 0; i < 100; i++ {
		if err := rt.Run(inc); err != nil {
			t.Fatal(err)
		}
	}
	if after := rt.LatencyStats().Count(); after != on {
		t.Fatalf("histogram grew from %d to %d with tracking off", on, after)
	}
}
