package stm_test

import (
	"sync"
	"testing"

	"repro/stm"
)

type account struct {
	Balance uint64
	Limit   uint64
	Flags   uint64
}

// oddSized is 20 bytes (4-byte aligned, so no padding rounds it up) —
// not a multiple of the word size, exercising the byte-copy
// encode/decode path and the zeroed padding tail.
type oddSized struct {
	V [4]uint32
	T uint32
}

// subWordAligned is word-SIZED but only 4-byte aligned: the direct
// *uint64 view would be a misaligned pointer conversion (checkptr
// panics under -race), so it must take the copy path.
type subWordAligned struct{ A, B uint32 }

// TestRefRoundTrip checks Load(Store(v)) == v for word-multiple and
// odd-sized types, plus the handle surface (Addr, Words, RefAt, IsNil).
func TestRefRoundTrip(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	site := rt.RegisterSite("ref.rt")
	th := rt.MustAttach()
	defer rt.Detach(th)

	if w := stm.WordsOf[account](); w != 3 {
		t.Fatalf("WordsOf[account] = %d, want 3", w)
	}
	if w := stm.WordsOf[oddSized](); w != 3 {
		t.Fatalf("WordsOf[oddSized] = %d, want 3 (20 bytes rounded up)", w)
	}

	var ar stm.Ref[account]
	var or stm.Ref[oddSized]
	var sr stm.Ref[subWordAligned]
	want := account{Balance: 12345, Limit: 99, Flags: 0xDEAD}
	wantOdd := oddSized{V: [4]uint32{1 << 30, 7, 65535, 200}, T: 0xBEEF}
	wantSub := subWordAligned{A: 0xA5A5A5A5, B: 0x5A5A5A5A}
	th.Run(func(tx *stm.Tx) error {
		ar = stm.AllocRef[account](tx, site)
		ar.Store(tx, want)
		or = stm.AllocRef[oddSized](tx, site)
		or.Store(tx, wantOdd)
		sr = stm.AllocRef[subWordAligned](tx, site)
		sr.Store(tx, wantSub)
		return nil
	})
	th.Run(func(tx *stm.Tx) error {
		if got := ar.Load(tx); got != want {
			t.Errorf("account round trip: %+v, want %+v", got, want)
		}
		if got := or.Load(tx); got != wantOdd {
			t.Errorf("oddSized round trip: %+v, want %+v", got, wantOdd)
		}
		if got := sr.Load(tx); got != wantSub {
			t.Errorf("subWordAligned round trip: %+v, want %+v", got, wantSub)
		}
		// Rebuilding the handle from its address reads the same object.
		if got := stm.RefAt[account](ar.Addr()).Load(tx); got != want {
			t.Errorf("RefAt round trip: %+v, want %+v", got, want)
		}
		// The word view and the typed view agree.
		if v := tx.Load(ar.WordAddr(0)); v != want.Balance {
			t.Errorf("word 0 = %d, want %d", v, want.Balance)
		}
		return nil
	}, stm.ReadOnly())

	if !stm.RefAt[account](stm.Nil).IsNil() {
		t.Fatal("RefAt(Nil) is not nil")
	}
	var zero stm.Ref[account]
	if !zero.IsNil() {
		t.Fatal("zero Ref is not nil")
	}
}

// TestRefRejectsPointerTypes checks the heap-type validation: Go
// pointers (and pointer-carrying kinds) must not enter the heap.
func TestRefRejectsPointerTypes(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("pointer field", func() { stm.WordsOf[struct{ P *int }]() })
	assertPanics("slice", func() { stm.WordsOf[[]uint64]() })
	assertPanics("string field", func() { stm.WordsOf[struct{ S string }]() })
	assertPanics("map", func() { stm.WordsOf[map[int]int]() })
	assertPanics("zero size", func() { stm.WordsOf[struct{}]() })
}

// TestRefTorture hammers one typed object from concurrent workers under
// every write mode: each transaction moves value between the object's
// two balance fields and bumps its op counter, so Total is invariant and
// Ops counts commits exactly. Torn multi-word reads or lost writes —
// e.g. a Store that skipped a word's lock — would break one of the two.
func TestRefTorture(t *testing.T) {
	type obj struct {
		A, B uint64 // A+B invariant
		Ops  uint64
	}
	const total = 1 << 20
	modes := []struct {
		name string
		mut  func(*stm.PartConfig)
	}{
		{"wb", func(c *stm.PartConfig) {}},
		{"wt", func(c *stm.PartConfig) { c.Write = stm.WriteThrough }},
		{"ctl", func(c *stm.PartConfig) { c.Acquire = stm.CommitTime }},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			cfg := stm.DefaultPartConfig()
			m.mut(&cfg)
			rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, Default: &cfg, YieldEveryOps: 8})
			site := rt.RegisterSite("ref.torture")
			setup := rt.MustAttach()
			var r stm.Ref[obj]
			setup.Run(func(tx *stm.Tx) error {
				r = stm.AllocRef[obj](tx, site)
				r.Store(tx, obj{A: total})
				return nil
			})
			rt.Detach(setup)

			const workers, opsEach = 8, 300
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					th := rt.MustAttach()
					defer rt.Detach(th)
					for i := 0; i < opsEach; i++ {
						th.Run(func(tx *stm.Tx) error {
							o := r.Load(tx)
							if o.A+o.B != total {
								t.Errorf("torn read: A+B = %d", o.A+o.B)
							}
							move := (seed + uint64(i)) % 100
							if move > o.A {
								move = o.A
							}
							o.A -= move
							o.B += move
							o.Ops++
							r.Store(tx, o)
							return nil
						})
					}
				}(uint64(w)*7 + 1)
			}
			wg.Wait()
			check := rt.MustAttach()
			defer rt.Detach(check)
			check.Run(func(tx *stm.Tx) error {
				o := r.Load(tx)
				if o.A+o.B != total {
					t.Fatalf("invariant broken: A+B = %d, want %d", o.A+o.B, total)
				}
				if o.Ops != workers*opsEach {
					t.Fatalf("lost updates: Ops = %d, want %d", o.Ops, workers*opsEach)
				}
				return nil
			}, stm.ReadOnly())
		})
	}
}

// TestRefSnapshotScan checks typed objects under snapshot mode: readers
// scanning a list of objects through Run(Snapshot()) always see each
// object whole (the per-object invariant holds at the pinned snapshot)
// while writers rewrite objects wholesale, and reconstruction hits are
// actually served.
func TestRefSnapshotScan(t *testing.T) {
	type obj struct {
		A, B, C, D uint64 // A+B+C+D == 4*Gen, all four equal Gen
		Gen        uint64
	}
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 18, SnapshotHistory: 1 << 12, YieldEveryOps: 8})
	site := rt.RegisterSite("ref.snap")
	const nObjs = 32
	refs := make([]stm.Ref[obj], nObjs)
	setup := rt.MustAttach()
	setup.Run(func(tx *stm.Tx) error {
		for i := range refs {
			refs[i] = stm.AllocRef[obj](tx, site)
			refs[i].Store(tx, obj{})
		}
		return nil
	})
	rt.Detach(setup)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: bump whole objects
		defer wg.Done()
		th := rt.MustAttach()
		defer rt.Detach(th)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r := refs[i%nObjs]
			th.Run(func(tx *stm.Tx) error {
				o := r.Load(tx)
				g := o.Gen + 1
				r.Store(tx, obj{A: g, B: g, C: g, D: g, Gen: g})
				return nil
			})
		}
	}()
	var snapHits uint64
	for round := 0; round < 200; round++ {
		th := rt.MustAttach()
		th.Run(func(tx *stm.Tx) error {
			for i := range refs {
				o := refs[i].Load(tx)
				if o.A != o.Gen || o.B != o.Gen || o.C != o.Gen || o.D != o.Gen {
					t.Errorf("torn snapshot object %d: %+v", i, o)
				}
			}
			snapHits += tx.SnapshotHits()
			return nil
		}, stm.Snapshot())
		rt.Detach(th)
	}
	close(stop)
	wg.Wait()
	st := rt.PartitionStats(stm.GlobalPartition)
	t.Logf("snapshot scan: %d reconstructed reads (SnapHits=%d SnapMisses=%d)", snapHits, st.SnapHits, st.SnapMisses)
}
