package stm

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"
)

// Ref is a typed handle to a fixed-size object in the transactional heap.
// T must be a pointer-free type (no Go pointers, maps, slices, strings,
// channels, funcs or interfaces anywhere in it — heap words are plain
// uint64 storage, and a Go pointer round-tripped through one would escape
// the collector); Addr-valued fields are the supported way to link
// objects. A Ref is a plain value (an address plus a word count): copy it
// freely, store it in other objects via Addr, rebuild it with RefAt.
//
// Load and Store move the whole object through the multi-word primitives
// (Tx.LoadWords / Tx.StoreWords), so an object costs one footprint touch
// — and, for words sharing an ownership record, one lock sample and one
// read-set entry — instead of one per word, and a whole-object Store
// publishes its snapshot-history records as one contiguous group that
// snapshot readers reconstruct with a single index probe.
//
// The zero Ref is nil: IsNil reports it and Load/Store panic on it.
type Ref[T any] struct {
	addr  Addr
	words int32
}

// AllocRef allocates a fresh object of type T at the given allocation
// site and returns its handle. The object's words start zero (or, for
// recycled memory, hold their previous committed contents — see
// Tx.Alloc); Store the initial value before publishing the reference. It
// panics if T is not a valid heap object type (see Ref).
func AllocRef[T any](tx *Tx, site SiteID) Ref[T] {
	w := refWords[T]()
	return Ref[T]{addr: tx.Alloc(site, w), words: int32(w)}
}

// RefAt wraps existing heap storage at addr as a Ref[T]. The caller
// asserts that WordsOf[T] words at addr belong to one object; RefAt
// panics if T is not a valid heap object type. RefAt(Nil) is the nil
// Ref.
func RefAt[T any](addr Addr) Ref[T] {
	w := refWords[T]()
	if addr == Nil {
		return Ref[T]{}
	}
	return Ref[T]{addr: addr, words: int32(w)}
}

// WordsOf returns the number of 64-bit heap words an object of type T
// occupies (its size rounded up to whole words). It panics if T is not a
// valid heap object type.
func WordsOf[T any]() int { return refWords[T]() }

// Addr returns the object's heap address (Nil for the nil Ref) — the
// currency for linking objects: store it in another object's Addr field,
// or through Tx.StoreAddr when the link should feed the partition
// profiler.
func (r Ref[T]) Addr() Addr { return r.addr }

// Words returns the object's size in heap words (0 for the nil Ref).
func (r Ref[T]) Words() int { return int(r.words) }

// IsNil reports whether the Ref is the nil handle.
func (r Ref[T]) IsNil() bool { return r.addr == Nil }

// WordAddr returns the heap address of the object's i-th word, for mixing
// Ref objects with the word-level escape hatch (e.g. Tx.StoreAddr on a
// link field so profiling sees the edge).
func (r Ref[T]) WordAddr(i int) Addr {
	if i < 0 || i >= int(r.words) {
		panic(fmt.Sprintf("stm: WordAddr(%d) out of range for %d-word Ref", i, r.words))
	}
	return r.addr + Addr(i)
}

// Load transactionally reads the whole object.
func (r Ref[T]) Load(tx *Tx) T {
	var v T
	n := r.use()
	if wordViewable(&v) {
		// Word-sized, word-aligned layout: read straight into v's storage.
		tx.LoadWords(r.addr, unsafe.Slice((*uint64)(unsafe.Pointer(&v)), n))
		return v
	}
	buf := make([]uint64, n)
	tx.LoadWords(r.addr, buf)
	copy(byteView(&v), wordBytes(buf))
	return v
}

// Store transactionally writes the whole object.
func (r Ref[T]) Store(tx *Tx, v T) {
	n := r.use()
	if wordViewable(&v) {
		tx.StoreWords(r.addr, unsafe.Slice((*uint64)(unsafe.Pointer(&v)), n))
		return
	}
	buf := make([]uint64, n) // zero: the padding tail of the last word stays 0
	copy(wordBytes(buf), byteView(&v))
	tx.StoreWords(r.addr, buf)
}

// wordViewable reports whether v's storage may be reinterpreted as
// []uint64 directly: both the size AND the alignment must be
// word-multiple (a size-8, align-4 struct can land on a 4-mod-8 stack
// address, where the cast would be a misaligned pointer conversion).
func wordViewable[T any](v *T) bool {
	return unsafe.Sizeof(*v)&7 == 0 && unsafe.Alignof(*v) == 8
}

// Free schedules the object for recycling if and when the transaction
// commits; the caller must already have unlinked it (see Tx.Free).
func (r Ref[T]) Free(tx *Tx) {
	tx.Free(r.addr, int(r.words))
}

// use validates the handle on the hot path.
func (r Ref[T]) use() int {
	if r.addr == Nil || r.words == 0 {
		panic("stm: Load/Store through a nil or zero Ref")
	}
	return int(r.words)
}

// byteView reinterprets v's storage as bytes.
func byteView[T any](v *T) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(v)), int(unsafe.Sizeof(*v)))
}

// wordBytes reinterprets a word slice as bytes.
func wordBytes(w []uint64) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(w)*8)
}

// refWordsCache memoizes the validated word count per type: RefAt sits
// on per-node traversal hot paths (list walks rebuild a handle per
// node), where re-running the recursive reflect validation every call
// would cost as much as the transactional read it wraps.
var refWordsCache sync.Map // reflect.Type -> int

// refWords computes (and validates) T's heap footprint in words.
func refWords[T any]() int {
	t := reflect.TypeFor[T]()
	if w, ok := refWordsCache.Load(t); ok {
		return w.(int)
	}
	if t.Size() == 0 {
		panic(fmt.Sprintf("stm: Ref[%v]: zero-size type has no heap footprint", t))
	}
	if bad, ok := pointerField(t); ok {
		panic(fmt.Sprintf("stm: Ref[%v]: %s cannot live in the transactional heap (use Addr to link objects)", t, bad))
	}
	w := int((t.Size() + 7) / 8)
	refWordsCache.Store(t, w)
	return w
}

// pointerField walks t and reports the first pointer-carrying component,
// if any.
func pointerField(t reflect.Type) (string, bool) {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return "", false
	case reflect.Array:
		if bad, ok := pointerField(t.Elem()); ok {
			return bad, true
		}
		return "", false
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if bad, ok := pointerField(f.Type); ok {
				return fmt.Sprintf("field %s (%s)", f.Name, bad), true
			}
		}
		return "", false
	default:
		return fmt.Sprintf("kind %v", t.Kind()), true
	}
}
