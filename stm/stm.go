// Package stm is the public API of the partitioned software transactional
// memory: an object/word hybrid STM (TinySTM family) whose heap is
// automatically partitioned into independently tuned regions, reproducing
// Riegel, Fetzer & Felber, "Automatic Data Partitioning in Software
// Transactional Memories" (SPAA 2008).
//
// # Model
//
// The STM manages a word-addressable heap (package internal/memory):
// objects are allocated at named allocation sites and addressed by Addr.
// Transactions are goroutine-native: any goroutine calls Runtime.Run,
// the single options-driven entrypoint, with no per-goroutine setup;
// typed multi-word objects live behind generic Ref handles:
//
//	rt, _ := stm.New(stm.Config{HeapWords: 1 << 22})
//	site := rt.RegisterSite("app.account")
//
//	type Account struct{ Balance, Limit uint64 }
//	var acct stm.Ref[Account]
//	rt.Run(func(tx *stm.Tx) error {
//		acct = stm.AllocRef[Account](tx, site)
//		acct.Store(tx, Account{Balance: 100, Limit: 500})
//		return nil
//	})
//	rt.Run(func(tx *stm.Tx) error {
//		a := acct.Load(tx) // one multi-word read, one footprint touch
//		a.Balance++
//		acct.Store(tx, a)
//		return nil
//	})
//
// Underneath, Run borrows one of the MaxThreads Thread slots from the
// runtime's pool for the duration of the call: the steady-state
// borrow/return is lock-free (one CAS each way through a small victim
// cache, so a hot goroutine keeps re-claiming the Thread it used last
// with its allocator and transaction state warm), and when every slot is
// busy the call parks on a FIFO queue until one frees — admission
// control, never a failure. Long-lived workers that want to shave even
// that cost can still pin a Thread explicitly (Runtime.Attach /
// MustAttach / Detach) and call Thread.Run; pinned threads and the pool
// share the same MaxThreads slot space.
//
// Functional options select the execution mode: Run(fn) is an update
// transaction retried until commit; Run(fn, stm.ReadOnly()) takes the
// read-only fast path; Run(fn, stm.Snapshot()) reads at a pinned snapshot
// served by the multi-version store (see below); stm.MaxAttempts bounds
// the retry loop (ErrMaxAttempts) and stm.OnAbort observes every aborted
// attempt. The older entrypoints — Thread.Atomic, AtomicErr,
// ReadOnlyAtomic, SnapshotAtomic — remain as thin deprecated wrappers
// delegating to Run with the corresponding options.
//
// # Words and objects
//
// The word API (Tx.Load, Tx.Store, Tx.LoadAddr, Tx.StoreAddr) is the
// low-level escape hatch: it addresses single 64-bit words and is what
// the data-structure layer builds linked structures from. The object API
// sits on the multi-word primitives Tx.LoadWords, Tx.StoreWords and
// Tx.LoadRange, which touch per-access state (partition lookup, footprint
// registration, statistics) once per object instead of once per word and
// read words sharing an ownership record under one lock sample. Ref[T]
// wraps them with a typed, fixed-size view: any pointer-free Go type
// round-trips through its heap words (AllocRef, RefAt, Ref.Load,
// Ref.Store).
//
// # Partitioning
//
// A profiling run records which allocation sites are connected by stored
// pointers (Tx.StoreAddr); connected sites form one logical data
// structure. AutoPartition freezes those groups into partitions, each with
// its own ownership-record table and concurrency-control configuration.
// The runtime tuner (StartTuner) then adapts each partition independently:
// read visibility, and conflict-detection granularity.
//
//	rt.StartProfiling()
//	runWarmup()
//	plan := rt.StopProfilingAndPartition()
//	fmt.Print(plan.Describe(rt.Sites()))
//	rt.StartTuner(stm.DefaultTunerConfig())
//
// # Time bases
//
// Commit time itself is a pluggable layer (internal/clock). The default
// TimeBaseGlobal orders all commits on one shared counter — TL2/TinySTM
// semantics, with every update commit paying one shared read-modify-write.
// TimeBasePartitionLocal gives each partition its own commit counter plus
// a cheap global epoch: update transactions confined to a single
// partition (the common case once AutoPartition has split the heap) never
// touch shared clock state, so disjoint partitions stop contending on
// commit. Transactions that span partitions stay serializable through
// snapshot alignment and commit-time validation. Select the mode at
// construction (Config.TimeBase), switch it live with SetTimeBase, or let
// the tuner decide (TunerConfig.AdaptTimeBase); ClockStats exposes the
// per-partition counters and shared-RMW figures.
//
// # Snapshot mode
//
// Partitions can retain a bounded multi-version history of overwritten
// values (internal/mvstore): update commits append the values they
// replace — back to back per commit, so a multi-word object written by
// one commit forms a contiguous grouped record — and read-only
// transactions run through Run(fn, stm.Snapshot()) read at a snapshot
// pinned at their first access, reconstructing any location a writer has
// since overwritten from that history (a whole object in one index probe
// when it was written by a single commit). Such
// transactions never validate, never extend, and — while the needed
// records are retained — never abort, no matter how heavy the write
// traffic: long analytic scans coexist with saturating writers. A
// missing or exhausted history degrades gracefully to the ordinary
// validate/extend read path, so correctness never depends on retention.
// Enable per partition with PartConfig.HistCap, for the whole runtime
// with Config.SnapshotHistory, or let the tuner manage stores itself
// (TunerConfig.AdaptSnapshot: attach on unserved snapshot demand or a
// read-dominated mix, double retention while misses persist, drop when
// demand dries up); SnapshotHistoryStats reports capacity, appends and
// the retained version span.
//
// All transactions remain serializable across partitions: the time base
// orders commits, partitioning only splits conflict detection.
package stm

import (
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/mvstore"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tuning"
	"repro/internal/wal"
)

// Re-exported types: the facade keeps one import path for users while the
// implementation lives in focused internal packages.
type (
	// Addr is a word address in the transactional heap; 0 is nil.
	Addr = memory.Addr
	// SiteID names an allocation site.
	SiteID = memory.SiteID
	// Tx is a transaction handle, valid inside an Atomic block.
	Tx = core.Tx
	// Thread is a per-goroutine transaction context.
	Thread = core.Thread
	// PartConfig is a partition's concurrency-control configuration.
	PartConfig = core.PartConfig
	// ReadMode selects invisible vs visible reads.
	ReadMode = core.ReadMode
	// AcquireMode selects encounter-time vs commit-time locking.
	AcquireMode = core.AcquireMode
	// WriteMode selects write-back vs write-through.
	WriteMode = core.WriteMode
	// CMPolicy selects the lock-conflict contention manager.
	CMPolicy = core.CMPolicy
	// ReaderPolicy arbitrates writers against visible readers.
	ReaderPolicy = core.ReaderPolicy
	// AbortCause classifies why an attempt aborted.
	AbortCause = core.AbortCause
	// PartID identifies a partition.
	PartID = core.PartID
	// PartStats is an aggregated statistics snapshot for one partition.
	PartStats = core.PartStats
	// Plan is a frozen site→partition assignment.
	Plan = partition.Plan
	// TunerConfig configures the runtime tuner.
	TunerConfig = tuning.Config
	// TunerDecision records one tuner actuation.
	TunerDecision = tuning.Decision
	// TraceRecorder is a ring-buffer recorder of transaction attempts.
	TraceRecorder = trace.Recorder
	// AttemptEvent is one traced transaction attempt outcome.
	AttemptEvent = core.AttemptEvent
	// TimeBaseMode selects the commit time base (global vs partition-local
	// counters).
	TimeBaseMode = core.TimeBaseMode
	// ClockStats is a momentary reading of the commit time base:
	// per-partition counters plus shared-RMW contention figures.
	ClockStats = clock.Stats
	// SnapshotHistoryStats is a momentary reading of one partition's
	// multi-version snapshot store: capacity, appends, live records and
	// the retained version span.
	SnapshotHistoryStats = mvstore.Stats
	// TxOpt is a functional option selecting how Run executes a
	// transaction (see ReadOnly, Snapshot, MaxAttempts, OnAbort).
	TxOpt = core.TxOpt
	// PoolStats is a momentary reading of the Runtime.Run slot pool.
	PoolStats = core.PoolStats
	// ReclaimStats is a momentary reading of epoch-based memory
	// reclamation: horizon, lag, and retired/reclaimed word totals.
	ReclaimStats = core.ReclaimStats
	// LatencyStats is a mergeable latency-histogram snapshot (HDR-style
	// log-linear buckets, ~6% bounded relative error): Count, Mean,
	// Quantile, Max, plus Add/Sub for unions and windowed deltas.
	LatencyStats = stats.HistSnapshot
)

// ErrMaxAttempts is the sentinel matched (via errors.Is) by the error Run
// returns when a MaxAttempts budget is exhausted before the transaction
// commits. The concrete error is a *MaxAttemptsError carrying the final
// abort cause.
var ErrMaxAttempts = core.ErrMaxAttempts

// MaxAttemptsError is the concrete error returned on an exhausted
// MaxAttempts budget: errors.As gives access to the attempt count and the
// last attempt's abort cause.
type MaxAttemptsError = core.MaxAttemptsError

// ReadOnly marks a Run transaction read-only: it takes the read-only fast
// path, and transparently restarts in update mode if it writes.
func ReadOnly() TxOpt { return core.ReadOnly() }

// Snapshot runs a Run transaction in snapshot mode (implies ReadOnly):
// reads are served at a snapshot pinned at the first access, with
// overwritten values reconstructed from the touched partitions'
// multi-version stores — abort-free while the needed records are
// retained. See the package comment's snapshot-mode section.
func Snapshot() TxOpt { return core.Snapshot() }

// MaxAttempts bounds Run's retry loop: after n aborted attempts Run
// returns ErrMaxAttempts (n <= 0 means retry forever, the default).
func MaxAttempts(n int) TxOpt { return core.MaxAttempts(n) }

// OnAbort installs a hook observing every aborted attempt of a Run
// transaction; it runs after rollback, outside the transaction, with the
// abort cause and the 1-based attempt number.
func OnAbort(fn func(cause AbortCause, attempt int)) TxOpt { return core.OnAbort(fn) }

// Nil is the null heap address.
const Nil = memory.Nil

// Re-exported configuration enums.
const (
	InvisibleReads = core.InvisibleReads
	VisibleReads   = core.VisibleReads
	EncounterTime  = core.EncounterTime
	CommitTime     = core.CommitTime
	WriteBack      = core.WriteBack
	WriteThrough   = core.WriteThrough
	CMSuicide      = core.CMSuicide
	CMSpin         = core.CMSpin
	CMKarma        = core.CMKarma
	CMAggressive   = core.CMAggressive
	CMBackoff      = core.CMBackoff
	CMTimestamp    = core.CMTimestamp

	WriterKillsReaders    = core.WriterKillsReaders
	WriterYieldsToReaders = core.WriterYieldsToReaders

	// TimeBaseGlobal is the single shared commit counter (the default).
	TimeBaseGlobal = core.TimeBaseGlobal
	// TimeBasePartitionLocal gives each partition its own commit counter.
	TimeBasePartitionLocal = core.TimeBasePartitionLocal
)

// Abort causes, for indexing PartStats.Aborts.
const (
	AbortLockedOnRead  = core.AbortLockedOnRead
	AbortLockedOnWrite = core.AbortLockedOnWrite
	AbortValidation    = core.AbortValidation
	AbortKilled        = core.AbortKilled
	AbortReaderWall    = core.AbortReaderWall
	AbortUpgrade       = core.AbortUpgrade
	AbortExplicit      = core.AbortExplicit
)

// GlobalPartition is the id of the default partition.
const GlobalPartition = core.GlobalPartition

// MaxThreads is the maximum number of simultaneously attached threads.
const MaxThreads = core.MaxThreads

// DefaultPartConfig returns the TinySTM-style default configuration.
func DefaultPartConfig() PartConfig { return core.DefaultPartConfig() }

// DefaultTunerConfig returns the tuner defaults used in the experiments.
func DefaultTunerConfig() TunerConfig { return tuning.DefaultConfig() }

// Config configures a Runtime.
type Config struct {
	// HeapWords is the transactional heap capacity in 64-bit words
	// (allocated eagerly). Default 1<<22 (32 MiB).
	HeapWords uint64
	// BlockShift is log2 of the heap block size in words (a block is the
	// unit of site ownership). Default 12.
	BlockShift uint
	// Default is the initial configuration of the global partition (and
	// of discovered partitions until the tuner specializes them).
	// Zero value: DefaultPartConfig.
	Default *PartConfig
	// YieldEveryOps, when nonzero, enables interleaving simulation: each
	// transactional operation becomes a scheduling point with probability
	// 1/YieldEveryOps. Use on hosts with fewer cores than workers so
	// transaction conflict windows actually overlap.
	YieldEveryOps uint64
	// TimeBase selects the commit time base. Zero value: TimeBaseGlobal
	// (classic single shared counter).
	TimeBase TimeBaseMode
	// SnapshotHistory, when nonzero, attaches a multi-version snapshot
	// store of that many overwrite records to every partition (it fills
	// PartConfig.HistCap on the default configuration), enabling
	// abort-free read-only transactions via Run(fn, Snapshot()). Zero
	// leaves snapshot history off; individual partitions can still opt in
	// through their own HistCap, and the tuner can attach stores
	// adaptively (TunerConfig.AdaptSnapshot).
	//
	// Precedence against Default is explicit: SnapshotHistory fills
	// Default.HistCap only when the latter is zero (or when both agree);
	// setting both to different nonzero values is a configuration
	// conflict and New returns an error rather than silently preferring
	// either.
	SnapshotHistory uint
	// LatencyStats enables per-attempt commit-latency tracking from the
	// start: every committed attempt records its duration into the touched
	// partitions' histograms, readable via Runtime.LatencyStats and
	// PartStats.Latency. Off by default (one clock read per attempt plus
	// one histogram increment per touched partition when on); can also be
	// toggled live with Runtime.SetLatencyTracking.
	LatencyStats bool
	// WAL, when non-nil, makes the heap durable: commits tee their write
	// sets into a group-committed redo log in WAL.Dir, and New recovers
	// the heap from the directory's checkpoint and log tail before
	// returning (Runtime.Recovery reports what it found). See WALConfig
	// in wal.go.
	WAL *WALConfig
}

// Runtime owns the heap, the STM engine, the partition analyzer and the
// tuner.
type Runtime struct {
	arena    *memory.Arena
	eng      *core.Engine
	analyzer *partition.Analyzer
	tuner    *tuning.Tuner
	baseCfg  PartConfig
	wal      *wal.Log
	recovery *RecoveryInfo
}

// New creates a runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.HeapWords == 0 {
		cfg.HeapWords = 1 << 22
	}
	arena, err := memory.NewArena(memory.Config{
		CapacityWords: cfg.HeapWords,
		BlockShift:    cfg.BlockShift,
	})
	if err != nil {
		return nil, fmt.Errorf("stm: %w", err)
	}
	base := core.DefaultPartConfig()
	if cfg.Default != nil {
		base = cfg.Default.Normalize()
	}
	if cfg.SnapshotHistory > 0 {
		// Explicit merge, never a silent override: SnapshotHistory fills
		// Default.HistCap when that is unset, and conflicting nonzero
		// values are a configuration error (see Config.SnapshotHistory).
		if cfg.Default != nil && cfg.Default.HistCap != 0 && cfg.Default.HistCap != cfg.SnapshotHistory {
			return nil, fmt.Errorf("stm: Config.SnapshotHistory (%d) conflicts with Config.Default.HistCap (%d); set one, or set both equal",
				cfg.SnapshotHistory, cfg.Default.HistCap)
		}
		base.HistCap = cfg.SnapshotHistory
		base = base.Normalize()
	}
	rt := &Runtime{
		arena:    arena,
		eng:      core.NewEngine(arena, base),
		analyzer: partition.NewAnalyzer(),
		baseCfg:  base,
	}
	if cfg.YieldEveryOps > 0 {
		rt.eng.SetYieldEveryOps(cfg.YieldEveryOps)
	}
	if cfg.TimeBase != TimeBaseGlobal {
		rt.eng.SetTimeBaseMode(cfg.TimeBase)
	}
	if cfg.LatencyStats {
		rt.eng.SetLatencyTracking(true)
	}
	if cfg.WAL != nil {
		if err := rt.attachWAL(cfg.WAL); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// MustNew is New that panics on configuration error.
func MustNew(cfg Config) *Runtime {
	rt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// RegisterSite returns the id for a named allocation site, creating it if
// needed. Register sites at setup; allocation sites are the unit the
// partition analysis groups.
func (r *Runtime) RegisterSite(name string) SiteID {
	return r.arena.Sites().Register(name)
}

// Sites exposes the site table (for reports).
func (r *Runtime) Sites() *memory.Sites { return r.arena.Sites() }

// Run runs fn as one transaction from any goroutine, in the mode
// selected by opts (ReadOnly, Snapshot, MaxAttempts, OnAbort), retrying
// on conflict until it commits. No Thread management is needed: a pooled
// Thread is borrowed from the runtime's slot pool for the duration of the
// call and returned on completion, a hot goroutine transparently
// re-claims the Thread it used last (keeping its allocator and
// transaction state warm), and when all MaxThreads slots are busy the
// call parks on a FIFO queue until one frees — admission control, never
// a failure. This is the recommended entrypoint; see Attach for when to
// pin a Thread instead.
func (r *Runtime) Run(fn func(*Tx) error, opts ...TxOpt) error {
	return r.eng.RunPooled(fn, opts...)
}

// Attach registers the calling goroutine and returns a pinned Thread.
//
// Most code should use Runtime.Run and never see a Thread. Pin one only
// when a long-lived worker runs many transactions back to back and wants
// to shave the (small) borrow/return cost per call, or when a test needs
// a stable slot identity. Pinned threads consume slots from the same
// MaxThreads space as the Run pool for as long as they stay attached —
// a pinned Thread held idle is admission capacity taken from Run.
func (r *Runtime) Attach() (*Thread, error) { return r.eng.AttachThread() }

// MustAttach is Attach that panics when all thread slots are taken.
func (r *Runtime) MustAttach() *Thread { return r.eng.MustAttachThread() }

// Detach releases a pinned thread's slot.
func (r *Runtime) Detach(th *Thread) { r.eng.DetachThread(th) }

// PoolStats returns a momentary reading of the Run slot pool (size, idle
// Threads, warm-path hits, handoffs to parked borrowers, waits).
func (r *Runtime) PoolStats() PoolStats { return r.eng.PoolStats() }

// StartProfiling begins recording pointer-store connectivity for the
// partition analysis. Run a representative warm-up workload while it is
// active; this is the dynamic stand-in for the paper's compile-time pass.
func (r *Runtime) StartProfiling() { r.eng.SetProfiler(r.analyzer, true) }

// StopProfiling stops recording (without building a plan).
func (r *Runtime) StopProfiling() { r.eng.SetProfiler(nil, false) }

// BuildPlan freezes the analyzer's grouping into a Plan without
// installing it; use plan.SetConfig to pre-seed per-partition
// configurations, then InstallPlan.
func (r *Runtime) BuildPlan() *Plan {
	return partition.BuildPlan(r.analyzer, r.arena.Sites(), r.baseCfg)
}

// InstallPlan installs a plan under quiescence.
func (r *Runtime) InstallPlan(p *Plan) error { return p.Install(r.eng) }

// StopProfilingAndPartition stops profiling, builds the plan from the
// observed connectivity, installs it, and returns it.
func (r *Runtime) StopProfilingAndPartition() (*Plan, error) {
	r.StopProfiling()
	p := r.BuildPlan()
	if err := r.InstallPlan(p); err != nil {
		return nil, err
	}
	return p, nil
}

// ManualPartition installs an explicit site-name grouping (the escape
// hatch for programmers who know the structure better than the analysis).
func (r *Runtime) ManualPartition(groups map[string][]string) (*Plan, error) {
	p, err := partition.ManualPlan(r.arena.Sites(), r.baseCfg, groups)
	if err != nil {
		return nil, err
	}
	if err := r.InstallPlan(p); err != nil {
		return nil, err
	}
	return p, nil
}

// UnPartition reinstalls the single-global-partition baseline.
func (r *Runtime) UnPartition() error {
	return r.InstallPlan(partition.SingleGlobalPlan(r.arena.Sites(), r.baseCfg))
}

// SavePlan serializes the plan together with each partition's CURRENT
// engine configuration (i.e. what the tuner learned, not the plan's
// initial configs) as reviewable JSON. Reload it in a later run with
// LoadAndInstallPlan to warm-start partitioning and tuning.
func (r *Runtime) SavePlan(w io.Writer, p *Plan) error {
	return p.Save(w, r.arena.Sites(), r.currentConfigs(p))
}

// currentConfigs collects each partition's live engine configuration,
// falling back to the plan's initial config where the engine has no such
// partition.
func (r *Runtime) currentConfigs(p *Plan) []PartConfig {
	configs := make([]PartConfig, 0, p.NumPartitions())
	for id := 0; id < p.NumPartitions(); id++ {
		if eng := r.eng.Partition(PartID(id)); eng != nil {
			configs = append(configs, eng.Config())
		} else {
			configs = append(configs, p.Configs[id])
		}
	}
	return configs
}

// LoadAndInstallPlan reads a plan saved by SavePlan, rebinds it to the
// current site table (every saved site must already be registered), and
// installs it. It returns the loaded plan.
func (r *Runtime) LoadAndInstallPlan(rd io.Reader) (*Plan, error) {
	p, err := partition.LoadPlan(rd, r.arena.Sites(), r.baseCfg)
	if err != nil {
		return nil, err
	}
	if err := r.InstallPlan(p); err != nil {
		return nil, err
	}
	return p, nil
}

// ErrCorruptPlan marks a plan file that failed integrity validation (torn
// write, bit rot). Warm-start code should treat it like a missing file —
// fall back to a cold start — via errors.Is(err, ErrCorruptPlan).
var ErrCorruptPlan = partition.ErrCorruptPlan

// SavePlanFile is SavePlan straight to a file, written atomically
// (checksummed temp file, fsync, rename, directory fsync): a crash during
// the save leaves the previous plan file intact, and a torn or rotted
// file is rejected by LoadAndInstallPlanFile as ErrCorruptPlan instead of
// being half-parsed.
func (r *Runtime) SavePlanFile(path string, p *Plan) error {
	configs := r.currentConfigs(p)
	return p.SaveFile(path, r.arena.Sites(), configs)
}

// LoadAndInstallPlanFile reads a plan written by SavePlanFile (or a plain
// SavePlan file), validates its checksum, installs it, and returns it. A
// missing file surfaces os.ErrNotExist and a damaged one ErrCorruptPlan;
// warm-start callers typically treat both as "no plan yet".
func (r *Runtime) LoadAndInstallPlanFile(path string) (*Plan, error) {
	p, err := partition.LoadPlanFile(path, r.arena.Sites(), r.baseCfg)
	if err != nil {
		return nil, err
	}
	if err := r.InstallPlan(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Reconfigure replaces one partition's configuration under quiescence.
func (r *Runtime) Reconfigure(id PartID, cfg PartConfig) error {
	return r.eng.Reconfigure(id, cfg)
}

// PartitionOf reports the partition currently owning addr.
func (r *Runtime) PartitionOf(addr Addr) PartID {
	return r.eng.PartitionOfAddr(addr).ID()
}

// PartitionConfig returns partition id's current configuration.
func (r *Runtime) PartitionConfig(id PartID) (PartConfig, error) {
	p := r.eng.Partition(id)
	if p == nil {
		return PartConfig{}, fmt.Errorf("stm: no partition %d", id)
	}
	return p.Config(), nil
}

// NumPartitions returns the number of partitions (≥1; partition 0 is the
// global default).
func (r *Runtime) NumPartitions() int { return len(r.eng.Partitions()) }

// PartitionNames returns partition display names indexed by PartID.
func (r *Runtime) PartitionNames() []string {
	parts := r.eng.Partitions()
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = p.Name()
	}
	return out
}

// StartTuner launches the per-partition runtime tuner.
func (r *Runtime) StartTuner(cfg TunerConfig) {
	if r.tuner != nil {
		return
	}
	r.tuner = tuning.New(r.eng, cfg)
	r.tuner.Start()
}

// StopTuner stops the tuner and returns its decision trace.
func (r *Runtime) StopTuner() []TunerDecision {
	if r.tuner == nil {
		return nil
	}
	r.tuner.Stop()
	tr := r.tuner.Trace()
	r.tuner = nil
	return tr
}

// TunerTrace returns the decisions taken so far (nil when no tuner runs).
func (r *Runtime) TunerTrace() []TunerDecision {
	if r.tuner == nil {
		return nil
	}
	return r.tuner.Trace()
}

// StartTracing installs a ring-buffer attempt tracer keeping the last
// capacity events, and returns it. Use the recorder's Snapshot/Summary
// after StopTracing; tracing adds one atomic pointer load per attempt.
func (r *Runtime) StartTracing(capacity int) *TraceRecorder {
	rec := trace.NewRecorder(capacity)
	if r.wal != nil {
		rec.SetWALStatsSource(r.WALStats)
	}
	r.eng.SetTracer(rec)
	return rec
}

// StopTracing detaches the tracer installed by StartTracing.
func (r *Runtime) StopTracing() { r.eng.SetTracer(nil) }

// TimeBase reports which commit time base the runtime is using.
func (r *Runtime) TimeBase() TimeBaseMode { return r.eng.TimeBaseMode() }

// SetTimeBase switches the commit time base under quiescence. Safe to
// call mid-traffic: counters migrate monotonically, so transactions
// observe time moving only forwards.
func (r *Runtime) SetTimeBase(m TimeBaseMode) { r.eng.SetTimeBaseMode(m) }

// ClockStats returns a momentary reading of the commit time base
// (per-partition counters, cross-partition epoch, shared-RMW counts).
func (r *Runtime) ClockStats() ClockStats { return r.eng.ClockStats() }

// SnapshotHistory returns a momentary reading of partition id's
// multi-version snapshot store (the zero value when the partition has no
// store configured).
func (r *Runtime) SnapshotHistory(id PartID) SnapshotHistoryStats {
	return r.eng.SnapshotHistory(id)
}

// Stats returns a statistics snapshot for every partition.
func (r *Runtime) Stats() []PartStats { return r.eng.AllStats() }

// SetLatencyTracking enables or disables per-attempt commit-latency
// recording (see Config.LatencyStats). Safe to toggle live.
func (r *Runtime) SetLatencyTracking(on bool) { r.eng.SetLatencyTracking(on) }

// LatencyTracking reports whether commit-latency recording is on.
func (r *Runtime) LatencyTracking() bool { return r.eng.LatencyTracking() }

// LatencyStats returns the runtime-wide commit-latency histogram —
// every partition's per-thread shards merged. Empty unless latency
// tracking is (or was) enabled via Config.LatencyStats or
// SetLatencyTracking. Per-partition breakdowns are on PartStats.Latency.
func (r *Runtime) LatencyStats() LatencyStats { return r.eng.LatencySnapshot() }

// PartitionStats returns the snapshot for one partition.
func (r *Runtime) PartitionStats(id PartID) PartStats { return r.eng.StatsSnapshot(id) }

// Engine exposes the underlying engine for benchmarks and tests that need
// low-level control.
func (r *Runtime) Engine() *core.Engine { return r.eng }

// HeapInUseBlocks reports how many heap blocks have been handed out.
func (r *Runtime) HeapInUseBlocks() uint64 { return r.arena.BlocksInUse() }

// HorizonIdle is the Horizon reading when no transaction is live anywhere:
// everything retired is immediately reclaimable.
const HorizonIdle = core.HorizonIdle

// Horizon returns the global reclamation horizon: the minimum begin stamp
// over all live transactions, or HorizonIdle when none is running. Words
// freed by Tx.Free (and by Ref.Free) sit in limbo until the horizon passes
// the freeing commit's stamp; see ReclaimStats for the running totals.
func (r *Runtime) Horizon() uint64 { return r.eng.Horizon() }

// ReclaimStats returns a momentary reading of epoch-based reclamation:
// the horizon, its lag behind the commit clock, and the cumulative
// retired/reclaimed word counts (LimboWords is their difference). A
// HorizonLag that keeps growing while LimboWords is non-zero is a horizon
// stall — one parked long-running transaction gating all reclamation
// (see TunerConfig.AdaptHorizon for the automatic mitigation).
func (r *Runtime) ReclaimStats() ReclaimStats { return r.eng.ReclaimStats() }

// Reclaim sweeps the horizon once and drains every idle pooled thread's
// limbo (plus the shared overflow) against it, returning the words
// recycled. Commit paths reclaim incrementally on their own; this is the
// quiesce/maintenance entry point — call it after a churn phase or from a
// housekeeping loop. Must not be called from inside a transaction.
func (r *Runtime) Reclaim() uint64 { return r.eng.ReclaimNow() }
