package stm

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/wal"
)

// Durability selects how hard a commit's redo record is when Run returns.
type Durability = wal.Durability

const (
	// DurabilityOff runs without a redo log (the default).
	DurabilityOff = wal.Off
	// DurabilityAsync tees every commit into the log; the group-commit
	// flusher fsyncs in the background. Run returns before the record is
	// durable, so a crash can lose the last group-commit interval.
	DurabilityAsync = wal.Async
	// DurabilitySync additionally parks each committing Run until its
	// record is fsynced: once Run returns nil, the commit survives any
	// crash. A commit whose record cannot become durable (the log died or
	// closed first) still applies in memory but surfaces as ErrNotDurable.
	DurabilitySync = wal.Sync
)

// ErrNotDurable is the sentinel matched (via errors.Is) by the error Run
// returns when a DurabilitySync commit applied in memory but its redo
// record never became durable — the log was dead or closed at publish
// time, or went down before the fsync. The heap mutation is not rolled
// back; treat the commit as applied-but-unacknowledged. The concrete
// error is a *NotDurableError.
var ErrNotDurable = core.ErrNotDurable

// NotDurableError is the concrete error behind ErrNotDurable, carrying
// the log sequence the commit claimed (0 when the publish was refused).
type NotDurableError = core.NotDurableError

// WALConfig configures the durable redo log (Config.WAL).
type WALConfig struct {
	// Dir is the log directory (created if missing). It holds rotating
	// segment files plus at most one CHECKPOINT image.
	Dir string
	// Durability selects the commit contract. DurabilityOff with a
	// non-nil WALConfig is promoted to DurabilityAsync — attach a config
	// only when you want the log.
	Durability Durability
	// GroupCommitInterval is the flusher's coalescing window (default
	// 200µs): commits arriving within one window share one fsync.
	GroupCommitInterval time.Duration
	// SegmentBytes rotates the active segment past this size (default
	// 64 MiB).
	SegmentBytes int64
	// RingSize is the publish queue's capacity in records (default 8192,
	// rounded up to a power of two).
	RingSize int
}

// Aliased WAL observability types.
type (
	// WALStats is a momentary reading of the redo log's counters.
	WALStats = wal.Stats
	// RecoveryInfo summarizes what startup recovery found and repaired.
	RecoveryInfo = wal.RecoveryInfo
	// WALLog is the underlying redo log (exposed for tests and torture
	// harnesses; normal code only needs Config.WAL and Checkpoint).
	WALLog = wal.Log
)

// attachWAL recovers the heap from cfg.Dir and attaches the redo log to
// the engine. Order matters: checkpoint image first, then the log tail
// replayed over it, then the commit clock re-seeded past everything
// recovered — only then may transactional traffic start.
func (r *Runtime) attachWAL(cfg *WALConfig) error {
	cp, err := wal.ReadCheckpoint(cfg.Dir)
	if err != nil {
		return fmt.Errorf("stm: wal recovery: %w", err)
	}
	var cpSeq, clockTarget uint64
	if cp != nil {
		if uint(cp.BlockShift) != r.arena.BlockShift() {
			return fmt.Errorf("stm: wal recovery: checkpoint block shift %d, arena configured with %d",
				cp.BlockShift, r.arena.BlockShift())
		}
		// Re-register the checkpoint's sites in id order so the SiteIDs
		// embedded in its block table (and in grab records) stay valid.
		for i, name := range cp.Sites {
			if id := r.arena.Sites().Register(name); id != SiteID(i) {
				return fmt.Errorf("stm: wal recovery: site %q registered as %d, checkpoint has %d — register custom sites only after New",
					name, id, i)
			}
		}
		bs := make([]memory.SiteID, len(cp.BlockSite))
		for i, sid := range cp.BlockSite {
			bs[i] = memory.SiteID(sid)
		}
		if err := r.arena.RestoreSnapshot(cp.NextBlock, bs, cp.Words); err != nil {
			return fmt.Errorf("stm: wal recovery: %w", err)
		}
		cpSeq = cp.LastSeq
		clockTarget = cp.Clock
	}
	log, info, err := wal.Open(cfg.Dir, wal.Options{
		GroupCommitInterval: cfg.GroupCommitInterval,
		SegmentBytes:        cfg.SegmentBytes,
		RingSize:            cfg.RingSize,
		StartSeq:            cpSeq,
	})
	if err != nil {
		return fmt.Errorf("stm: wal recovery: %w", err)
	}
	st, err := log.Replay(cpSeq, func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindGrab:
			site := r.arena.Sites().Register(rec.Site)
			return r.arena.ApplyGrab(rec.FirstBlock, rec.Blocks, site)
		case wal.KindCommit:
			for _, op := range rec.Ops {
				r.arena.Store(memory.Addr(op.Addr), op.Val)
			}
		}
		return nil
	})
	if err != nil {
		log.Abandon()
		return fmt.Errorf("stm: wal recovery: %w", err)
	}
	if st.MaxVer > clockTarget {
		clockTarget = st.MaxVer
	}
	// Re-seed commit time strictly past everything recovered, so no new
	// commit can mint a version a replayed record already used.
	if now := r.eng.Clock(); clockTarget > now {
		r.eng.AdvanceClock(clockTarget - now)
	}
	r.eng.SetWAL(log, cfg.Durability == DurabilitySync)
	r.wal = log
	r.recovery = info
	return nil
}

// Recovery returns what startup recovery found in the WAL directory (nil
// without Config.WAL).
func (r *Runtime) Recovery() *RecoveryInfo { return r.recovery }

// WAL exposes the underlying redo log (nil without Config.WAL); intended
// for tests and crash-torture harnesses.
func (r *Runtime) WAL() *WALLog { return r.wal }

// WALStats returns the redo log's counters; ok is false without
// Config.WAL.
func (r *Runtime) WALStats() (WALStats, bool) {
	if r.wal == nil {
		return WALStats{}, false
	}
	return r.wal.Stats(), true
}

// Checkpoint writes a snapshot-consistent image of the heap into the WAL
// directory and truncates the log segments it makes dead. Concurrent
// transactions keep running — the image is taken online at a pinned
// snapshot when the engine can prove consistency, and under a brief
// stop-the-world gate otherwise; online reports which. Call it
// periodically to bound recovery time and log size.
func (r *Runtime) Checkpoint() (online bool, err error) {
	if r.wal == nil {
		return false, fmt.Errorf("stm: Checkpoint requires Config.WAL")
	}
	return r.eng.Checkpoint(r.wal)
}

// Close flushes and closes the redo log (no-op without Config.WAL). New
// commits after Close are no longer logged; call it only once transaction
// traffic has stopped (a DurabilitySync Run racing Close can observe the
// closed log and return ErrNotDurable).
func (r *Runtime) Close() error {
	if r.wal == nil {
		return nil
	}
	r.eng.SetWAL(nil, false)
	err := r.wal.Close()
	r.wal = nil
	return err
}
