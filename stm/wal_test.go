package stm_test

import (
	"errors"
	"sync"
	"testing"

	"repro/stm"
)

func newDurableRuntime(t *testing.T, dir string, d stm.Durability) *stm.Runtime {
	t.Helper()
	rt, err := stm.New(stm.Config{
		HeapWords:  1 << 16,
		BlockShift: 8,
		WAL:        &stm.WALConfig{Dir: dir, Durability: d},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rt
}

// TestWALRecoverySync: everything a Sync-durable Run acknowledged must be
// present after a crash (simulated by Abandon — the log stops flushing,
// exactly the state an fsynced prefix leaves behind) and a warm restart.
func TestWALRecoverySync(t *testing.T) {
	dir := t.TempDir()
	rt := newDurableRuntime(t, dir, stm.DurabilitySync)
	site := rt.RegisterSite("app.cells")
	const n = 64

	var base stm.Addr
	if err := rt.Run(func(tx *stm.Tx) error {
		base = tx.Alloc(site, n)
		for i := uint64(0); i < n; i++ {
			tx.Store(base+stm.Addr(i), i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 50; round++ {
		if err := rt.Run(func(tx *stm.Tx) error {
			i, j := round%n, (round*7+1)%n
			tx.Store(base+stm.Addr(i), tx.Load(base+stm.Addr(i))+100)
			tx.Store(base+stm.Addr(j), tx.Load(base+stm.Addr(j))+1000)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var want [n]uint64
	rt.Run(func(tx *stm.Tx) error {
		for i := range want {
			want[i] = tx.Load(base + stm.Addr(i))
		}
		return nil
	})
	rt.WAL().Abandon() // crash: no graceful flush

	rt2 := newDurableRuntime(t, dir, stm.DurabilitySync)
	defer rt2.Close()
	if info := rt2.Recovery(); info == nil || info.Records == 0 {
		t.Fatalf("Recovery() = %+v, want replayed records", rt2.Recovery())
	}
	if err := rt2.Run(func(tx *stm.Tx) error {
		for i := range want {
			if got := tx.Load(base + stm.Addr(i)); got != want[i] {
				t.Fatalf("cell %d = %d after recovery, want %d", i, got, want[i])
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The recovered runtime must keep working: new allocations must not
	// collide with replayed blocks, and new commits must log.
	if err := rt2.Run(func(tx *stm.Tx) error {
		a := tx.Alloc(rt2.RegisterSite("app.cells"), 4)
		if a >= base && a < base+stm.Addr(n) {
			t.Errorf("post-recovery Alloc returned %d inside the replayed range [%d,%d)", a, base, base+n)
		}
		tx.Store(a, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWALRecoveryIdempotent is satellite 3 at the runtime level: two
// recoveries over the same directory (replaying the same checkpoint and
// tail) must produce bit-identical heaps.
func TestWALRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	rt := newDurableRuntime(t, dir, stm.DurabilitySync)
	site := rt.RegisterSite("app.data")
	var base stm.Addr
	rt.Run(func(tx *stm.Tx) error {
		base = tx.Alloc(site, 32)
		return nil
	})
	for i := uint64(0); i < 40; i++ {
		rt.Run(func(tx *stm.Tx) error {
			tx.Store(base+stm.Addr(i%32), i*i+1)
			return nil
		})
	}
	if _, err := rt.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := uint64(0); i < 20; i++ { // tail beyond the checkpoint
		rt.Run(func(tx *stm.Tx) error {
			tx.Store(base+stm.Addr(i), i+5000)
			return nil
		})
	}
	rt.WAL().Abandon()

	snapshotHeap := func() []uint64 {
		r := newDurableRuntime(t, dir, stm.DurabilitySync)
		defer func() {
			r.WAL().Abandon() // do not extend the log with flush artifacts
		}()
		arena := r.Engine().Arena()
		used := arena.BlocksInUse() << arena.BlockShift()
		out := make([]uint64, used)
		for a := uint64(0); a < used; a++ {
			out[a] = arena.Load(stm.Addr(a))
		}
		return out
	}
	h1 := snapshotHeap()
	h2 := snapshotHeap()
	if len(h1) != len(h2) {
		t.Fatalf("recovered heap sizes differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("heap word %d differs between recoveries: %d vs %d", i, h1[i], h2[i])
		}
	}
}

// TestCheckpointTruncatesAndRecovers: a checkpoint must bound what replay
// has to redo while recovering the exact same state, and conservation
// must hold across checkpoint + crash + recovery under concurrent load.
func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	rt := newDurableRuntime(t, dir, stm.DurabilitySync)
	site := rt.RegisterSite("bank.accounts")
	const accounts = 32
	const total = accounts * 1000

	var base stm.Addr
	rt.Run(func(tx *stm.Tx) error {
		base = tx.Alloc(site, accounts)
		for i := 0; i < accounts; i++ {
			tx.Store(base+stm.Addr(i), 1000)
		}
		return nil
	})

	// Transfers racing a mid-stream checkpoint.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := uint64(w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*6364136223846793005 + 1442695040888963407
				i, j, amt := r%accounts, (r>>8)%accounts, (r>>16)%50
				rt.Run(func(tx *stm.Tx) error {
					tx.Store(base+stm.Addr(i), tx.Load(base+stm.Addr(i))-amt)
					tx.Store(base+stm.Addr(j), tx.Load(base+stm.Addr(j))+amt)
					return nil
				})
			}
		}(w)
	}
	for c := 0; c < 3; c++ {
		if _, err := rt.Checkpoint(); err != nil {
			t.Errorf("Checkpoint %d: %v", c, err)
		}
	}
	close(stop)
	wg.Wait()
	if st, ok := rt.WALStats(); !ok || st.Checkpoints != 3 {
		t.Errorf("WALStats = %+v, ok=%v; want 3 checkpoints", st, ok)
	}
	rt.WAL().Abandon()

	rt2 := newDurableRuntime(t, dir, stm.DurabilitySync)
	defer rt2.Close()
	if rt2.Recovery().CheckpointSeq == 0 {
		t.Error("recovery found no checkpoint floor")
	}
	rt2.Run(func(tx *stm.Tx) error {
		var sum uint64
		for i := 0; i < accounts; i++ {
			sum += tx.Load(base + stm.Addr(i))
		}
		if sum != total {
			t.Errorf("recovered balance sum = %d, want %d (conservation violated)", sum, total)
		}
		return nil
	})
}

// TestSyncRunSurfacesNotDurable: once the log is dead (crash simulated
// by Abandon), a DurabilitySync Run must not pretend its commit is
// durable — the commit still applies in memory, but Run returns
// ErrNotDurable instead of a silent nil ack.
func TestSyncRunSurfacesNotDurable(t *testing.T) {
	dir := t.TempDir()
	rt := newDurableRuntime(t, dir, stm.DurabilitySync)
	site := rt.RegisterSite("app.cell")
	var a stm.Addr
	if err := rt.Run(func(tx *stm.Tx) error {
		a = tx.Alloc(site, 1)
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rt.WAL().Abandon() // crash: the log is gone, the heap is not

	err := rt.Run(func(tx *stm.Tx) error {
		tx.Store(a, 2)
		return nil
	})
	if !errors.Is(err, stm.ErrNotDurable) {
		t.Fatalf("update Run on a dead Sync log = %v, want ErrNotDurable", err)
	}
	var nde *stm.NotDurableError
	if !errors.As(err, &nde) {
		t.Fatalf("err = %T, want *NotDurableError", err)
	}

	// Reads make no durability promise: a Run that writes nothing still
	// succeeds, and it must observe the applied-but-unacknowledged store.
	var got uint64
	if err := rt.Run(func(tx *stm.Tx) error {
		got = tx.Load(a)
		return nil
	}); err != nil {
		t.Fatalf("read-only Run on a dead Sync log: %v", err)
	}
	if got != 2 {
		t.Fatalf("cell = %d, want 2 (the non-durable commit still applied in memory)", got)
	}
}

// TestAsyncRunAfterCrashStaysSilent: DurabilityAsync never promised the
// record was on disk, so a dead log must not turn commits into errors.
func TestAsyncRunAfterCrashStaysSilent(t *testing.T) {
	dir := t.TempDir()
	rt := newDurableRuntime(t, dir, stm.DurabilityAsync)
	site := rt.RegisterSite("app.cell")
	var a stm.Addr
	if err := rt.Run(func(tx *stm.Tx) error {
		a = tx.Alloc(site, 1)
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rt.WAL().Abandon()
	if err := rt.Run(func(tx *stm.Tx) error {
		tx.Store(a, 2)
		return nil
	}); err != nil {
		t.Fatalf("async Run after crash = %v, want nil", err)
	}
}

// TestDurabilityOffHasNoLog: without Config.WAL the runtime must behave
// exactly as before the durability layer existed.
func TestDurabilityOffHasNoLog(t *testing.T) {
	rt, err := stm.New(stm.Config{HeapWords: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if rt.WAL() != nil || rt.Recovery() != nil {
		t.Error("WAL artifacts present without Config.WAL")
	}
	if _, ok := rt.WALStats(); ok {
		t.Error("WALStats ok without a log")
	}
	if _, err := rt.Checkpoint(); err == nil {
		t.Error("Checkpoint succeeded without a log")
	}
	if err := rt.Close(); err != nil {
		t.Errorf("Close without a log: %v", err)
	}
}

// TestWALTraceSummary: tracing on a durable runtime reports the log's
// group-commit behaviour in the summary.
func TestWALTraceSummary(t *testing.T) {
	dir := t.TempDir()
	rt := newDurableRuntime(t, dir, stm.DurabilitySync)
	defer rt.Close()
	rec := rt.StartTracing(64)
	site := rt.RegisterSite("app.t")
	rt.Run(func(tx *stm.Tx) error {
		a := tx.Alloc(site, 1)
		tx.Store(a, 1)
		return nil
	})
	rt.StopTracing()
	sum := rec.Summary()
	if !containsStr(sum, "wal:") {
		t.Errorf("Summary lacks wal line:\n%s", sum)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
