package stm_test

import (
	"testing"

	"repro/stm"
)

// FuzzLoadStoreWords differentially tests the multi-word primitives
// against the per-word escape hatch: a fuzzed op sequence runs inside
// one transaction over a fixed region while a shadow array tracks the
// expected contents (per-word semantics), every multi-word load must
// agree with the shadow — including read-after-write — and the committed
// state must equal the shadow afterwards. The first input byte selects
// the write mode so WB, WT and CTL all get coverage.
func FuzzLoadStoreWords(f *testing.F) {
	f.Add([]byte{0, 2, 10, 4, 42, 3, 8, 8, 7, 1, 5, 0, 0})
	f.Add([]byte{1, 2, 0, 16, 1, 4, 0, 60, 0, 2, 60, 8, 9})
	f.Add([]byte{2, 0, 63, 0, 2, 63, 4, 5, 3, 0, 64, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		const region = 64
		cfg := stm.DefaultPartConfig()
		switch data[0] % 3 {
		case 1:
			cfg.Write = stm.WriteThrough
		case 2:
			cfg.Acquire = stm.CommitTime
		}
		cfg.GranShift = uint(data[0]>>2) % 4 // 1..8 words per orec
		data = data[1:]
		rt := stm.MustNew(stm.Config{HeapWords: 1 << 14, Default: &cfg})
		site := rt.RegisterSite("fuzz.words")
		th := rt.MustAttach()
		defer rt.Detach(th)
		var base stm.Addr
		shadow := make([]uint64, region)
		th.Run(func(tx *stm.Tx) error {
			base = tx.Alloc(site, region)
			for i := range shadow {
				shadow[i] = uint64(i) * 31
			}
			tx.StoreWords(base, shadow)
			return nil
		})

		th.Run(func(tx *stm.Tx) error {
			for i := 0; i+3 < len(data); i += 4 {
				op := data[i] % 5
				off := int(data[i+1]) % region
				n := 1 + int(data[i+2])%16
				if off+n > region {
					n = region - off
				}
				val := uint64(data[i+3]) + uint64(i)<<8
				switch op {
				case 0: // per-word store
					tx.Store(base+stm.Addr(off), val)
					shadow[off] = val
				case 1: // multi-word store
					src := make([]uint64, n)
					for j := range src {
						src[j] = val + uint64(j)
					}
					tx.StoreWords(base+stm.Addr(off), src)
					copy(shadow[off:off+n], src)
				case 2: // per-word load
					if got := tx.Load(base + stm.Addr(off)); got != shadow[off] {
						t.Fatalf("Load(%d) = %d, want %d", off, got, shadow[off])
					}
				case 3: // multi-word load
					dst := make([]uint64, n)
					tx.LoadWords(base+stm.Addr(off), dst)
					for j := range dst {
						if dst[j] != shadow[off+j] {
							t.Fatalf("LoadWords(%d)[%d] = %d, want %d", off, j, dst[j], shadow[off+j])
						}
					}
				case 4: // range scan
					tx.LoadRange(base+stm.Addr(off), n, func(j int, v uint64) bool {
						if v != shadow[off+j] {
							t.Fatalf("LoadRange(%d)[%d] = %d, want %d", off, j, v, shadow[off+j])
						}
						return true
					})
				}
			}
			return nil
		})

		// Committed state must match the shadow, read both ways.
		th.Run(func(tx *stm.Tx) error {
			dst := make([]uint64, region)
			tx.LoadWords(base, dst)
			for i := range dst {
				if dst[i] != shadow[i] {
					t.Fatalf("committed LoadWords[%d] = %d, want %d", i, dst[i], shadow[i])
				}
				if got := tx.Load(base + stm.Addr(i)); got != shadow[i] {
					t.Fatalf("committed Load(%d) = %d, want %d", i, got, shadow[i])
				}
			}
			return nil
		}, stm.ReadOnly())
	})
}
