package stm_test

import (
	"fmt"

	"repro/stm"
	"repro/txds"
)

// Example shows the smallest complete use of the runtime: allocate a
// word, update it transactionally, read it back.
func Example() {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	site := rt.RegisterSite("example.counter")
	th := rt.MustAttach()
	defer rt.Detach(th)

	var counter stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		counter = tx.Alloc(site, 1)
		tx.Store(counter, 0)
	})
	for i := 0; i < 10; i++ {
		th.Atomic(func(tx *stm.Tx) { tx.Store(counter, tx.Load(counter)+1) })
	}
	th.ReadOnlyAtomic(func(tx *stm.Tx) { fmt.Println(tx.Load(counter)) })
	// Output: 10
}

// ExampleRuntime_StopProfilingAndPartition shows automatic partition
// discovery: two unrelated structures end up in two partitions.
func ExampleRuntime_StopProfilingAndPartition() {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 18})
	rt.StartProfiling()
	th := rt.MustAttach()
	var tree *txds.RBTree
	var queue *txds.Queue
	th.Atomic(func(tx *stm.Tx) {
		tree = txds.NewRBTree(tx, rt, "orders.index")
		queue = txds.NewQueue(tx, rt, "orders.inbox")
	})
	th.Atomic(func(tx *stm.Tx) {
		tree.Insert(tx, 1, 100)
		queue.Enqueue(tx, 1)
	})
	rt.Detach(th)
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		panic(err)
	}
	fmt.Printf("partitions: %d\n", plan.NumPartitions()-1) // minus the global default
	// Output: partitions: 2
}

// ExampleRuntime_ManualPartition shows the explicit grouping escape hatch
// with a per-partition configuration override.
func ExampleRuntime_ManualPartition() {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	rt.RegisterSite("hot.cell")
	rt.RegisterSite("cold.cell")
	if _, err := rt.ManualPartition(map[string][]string{
		"hot":  {"hot.cell"},
		"cold": {"cold.cell"},
	}); err != nil {
		panic(err)
	}
	// Give the hot partition visible reads.
	for id, name := range rt.PartitionNames() {
		if name == "hot" {
			cfg, _ := rt.PartitionConfig(stm.PartID(id))
			cfg.Read = stm.VisibleReads
			if err := rt.Reconfigure(stm.PartID(id), cfg); err != nil {
				panic(err)
			}
			fmt.Println("hot partition:", cfg.Read)
		}
	}
	// Output: hot partition: visible
}

// ExampleThread_AtomicErr shows aborting a transaction from user code:
// the error is returned and all effects are discarded.
func ExampleThread_AtomicErr() {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	site := rt.RegisterSite("example.balance")
	th := rt.MustAttach()
	defer rt.Detach(th)

	var balance stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		balance = tx.Alloc(site, 1)
		tx.Store(balance, 30)
	})
	withdraw := func(amount uint64) error {
		return th.AtomicErr(func(tx *stm.Tx) error {
			b := tx.Load(balance)
			if b < amount {
				return fmt.Errorf("insufficient funds: %d < %d", b, amount)
			}
			tx.Store(balance, b-amount)
			return nil
		})
	}
	fmt.Println(withdraw(20))
	fmt.Println(withdraw(20))
	th.ReadOnlyAtomic(func(tx *stm.Tx) { fmt.Println("balance:", tx.Load(balance)) })
	// Output:
	// <nil>
	// insufficient funds: 10 < 20
	// balance: 10
}
