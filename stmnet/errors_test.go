package stmnet

import (
	"errors"
	"testing"

	"repro/internal/wire"
	"repro/stm"
)

// TestRespErrorMapping pins the status-code → typed-error table: the
// reconstructed errors must satisfy the same errors.Is/As checks as the
// originals an in-process Run returns.
func TestRespErrorMapping(t *testing.T) {
	if err := respError(&wire.TxnResp{Status: wire.StatusOK}); err != nil {
		t.Fatalf("StatusOK → %v", err)
	}

	err := respError(&wire.TxnResp{Status: wire.StatusMaxAttempts, Attempts: 7, Cause: 2})
	if !errors.Is(err, stm.ErrMaxAttempts) {
		t.Fatalf("MaxAttempts: errors.Is failed: %v", err)
	}
	var ma *stm.MaxAttemptsError
	if !errors.As(err, &ma) || ma.Attempts != 7 || ma.Cause != 2 {
		t.Fatalf("MaxAttempts fields lost: %+v", ma)
	}

	err = respError(&wire.TxnResp{Status: wire.StatusNotDurable, Seq: 42})
	if !errors.Is(err, stm.ErrNotDurable) {
		t.Fatalf("NotDurable: errors.Is failed: %v", err)
	}
	var nd *stm.NotDurableError
	if !errors.As(err, &nd) || nd.Seq != 42 {
		t.Fatalf("NotDurable fields lost: %+v", nd)
	}

	err = respError(&wire.TxnResp{Status: wire.StatusBadRequest, Msg: "nope"})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("BadRequest: %v", err)
	}
	if err := respError(&wire.TxnResp{Status: wire.StatusClosing}); !errors.Is(err, ErrServerClosing) {
		t.Fatalf("Closing: %v", err)
	}
	if err := respError(&wire.TxnResp{Status: wire.StatusInternal, Msg: "boom"}); !errors.Is(err, ErrServer) {
		t.Fatalf("Internal: %v", err)
	}
}

// TestBatchBuilder pins op order and encoding-relevant fields.
func TestBatchBuilder(t *testing.T) {
	b := NewBatch().Get("a").Put("b", 1, 2).Add("c", Neg(5)).CAS("d", 0, 9)
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	want := []struct {
		code wire.OpCode
		key  string
	}{
		{wire.OpGet, "a"}, {wire.OpPut, "b"}, {wire.OpAdd, "c"}, {wire.OpCAS, "d"},
	}
	for i, w := range want {
		if b.ops[i].Code != w.code || b.ops[i].Key != w.key {
			t.Fatalf("op %d = %+v, want code %d key %q", i, b.ops[i], w.code, w.key)
		}
	}
	if b.ops[2].Delta != ^uint64(4) {
		t.Fatalf("Neg(5) = %#x", b.ops[2].Delta)
	}
	if b.flags != 0 {
		t.Fatalf("flags = %d before ForceUpdate", b.flags)
	}
	if b.ForceUpdate(); b.flags&wire.FlagUpdate == 0 {
		t.Fatal("ForceUpdate did not set FlagUpdate")
	}
	if v := (Result{}).Val(); v != 0 {
		t.Fatalf("empty Result.Val = %d", v)
	}
}
