package stmnet

import (
	"errors"
	"fmt"

	"repro/internal/wire"
	"repro/stm"
)

// ErrClientClosed reports that the connection is gone: Close was
// called, or the peer hung up. In-flight and later Do calls return it
// (or the earlier sticky transport error that killed the connection).
var ErrClientClosed = errors.New("stmnet: client closed")

// ErrBadRequest is the base error for batches the server rejected
// before running them (unknown opcode, oversized PUT, bounds
// violations). The returned error wraps it with the server's message.
var ErrBadRequest = errors.New("stmnet: bad request")

// ErrServerClosing reports that the server refused the batch because it
// is shutting down.
var ErrServerClosing = errors.New("stmnet: server closing")

// ErrServer is the base error for internal server failures.
var ErrServer = errors.New("stmnet: server error")

// respError rebuilds the typed error a TxnResp status encodes. The
// concrete stm error types carry their fields across the wire, so
// errors.Is(err, stm.ErrMaxAttempts), errors.As(err,
// **stm.MaxAttemptsError) etc. behave exactly as they do against an
// in-process Runtime.Run.
func respError(resp *wire.TxnResp) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusMaxAttempts:
		return &stm.MaxAttemptsError{Attempts: int(resp.Attempts), Cause: resp.Cause}
	case wire.StatusNotDurable:
		return &stm.NotDurableError{Seq: resp.Seq}
	case wire.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, resp.Msg)
	case wire.StatusClosing:
		return ErrServerClosing
	default:
		return fmt.Errorf("%w: %s", ErrServer, resp.Msg)
	}
}
