// Package stmnet is the client for the network-facing transactional
// store (internal/server, cmd/stmd): batched multi-key transactions
// over one pipelined TCP connection.
//
//	c, _ := stmnet.Dial("localhost:7437")
//	defer c.Close()
//
//	// One atomic transfer: both ADDs commit or neither does.
//	res, err := c.Do(stmnet.NewBatch().
//		Add("acct:alice", stmnet.Neg(10)).
//		Add("acct:bob", 10))
//
//	// An all-GET batch reads a consistent snapshot, abort-free.
//	res, err = c.Do(stmnet.NewBatch().Get("acct:alice").Get("acct:bob"))
//
// A Client is safe for concurrent use: every Do is tagged with a fresh
// request id, written atomically, and matched to its response by id, so
// any number of goroutines pipeline their batches over the one
// connection and the server streams responses back in completion order.
//
// Failures are typed end to end: a batch that exhausted the server's
// retry budget returns a *stm.MaxAttemptsError (attempt count and final
// abort cause) and a commit whose redo record never became durable
// returns a *stm.NotDurableError — the same concrete types, matching
// the same errors.Is sentinels (stm.ErrMaxAttempts, stm.ErrNotDurable),
// that an embedded stm.Runtime.Run returns in-process.
package stmnet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Client is one pipelined connection to a store server.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer
	enc []byte // reusable encode buffer, guarded by wmu

	pmu     sync.Mutex
	pending map[uint64]chan []byte // id → response payload (one shot)
	err     error                  // sticky connection error, guarded by pmu
	nextID  atomic.Uint64

	readerDone chan struct{}
}

// Dial connects to a store server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (any net.Conn, so tests can
// run over net.Pipe or an in-process listener).
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:         nc,
		bw:         bufio.NewWriterSize(nc, 64<<10),
		pending:    make(map[uint64]chan []byte),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down. In-flight Do calls fail with
// ErrClientClosed (or the connection's earlier sticky error).
func (c *Client) Close() error {
	err := c.nc.Close()
	<-c.readerDone
	return err
}

// readLoop routes response frames to their waiting callers by id.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var buf []byte
	for {
		payload, nbuf, err := wire.ReadFrame(br, buf)
		if err != nil {
			if err == io.EOF {
				err = ErrClientClosed
			}
			c.failAll(err)
			return
		}
		buf = nbuf
		var id uint64
		switch wire.Kind(payload) {
		case wire.KindTxnResp:
			// Peek the id without a full decode; the waiter decodes.
			if len(payload) < 9 {
				c.failAll(fmt.Errorf("stmnet: short response payload"))
				return
			}
			id = le64(payload[1:9])
		case wire.KindStatsResp:
			if len(payload) < 9 {
				c.failAll(fmt.Errorf("stmnet: short response payload"))
				return
			}
			id = le64(payload[1:9])
		default:
			c.failAll(fmt.Errorf("stmnet: unexpected message kind %d", wire.Kind(payload)))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if !ok {
			c.failAll(fmt.Errorf("stmnet: response for unknown request id %d", id))
			return
		}
		// The payload buffer is reused for the next frame: hand the
		// waiter its own copy.
		own := make([]byte, len(payload))
		copy(own, payload)
		ch <- own
	}
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// failAll fails every pending call and makes the error sticky.
func (c *Client) failAll(err error) {
	c.pmu.Lock()
	if c.err == nil {
		c.err = err
	}
	pend := c.pending
	c.pending = make(map[uint64]chan []byte)
	c.pmu.Unlock()
	for _, ch := range pend {
		close(ch) // a closed channel signals "look at the sticky error"
	}
	c.nc.Close()
}

// roundTrip registers a pending id, writes the frame, and waits for the
// response payload.
func (c *Client) roundTrip(id uint64, encode func(buf []byte) ([]byte, error)) ([]byte, error) {
	ch := make(chan []byte, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	payload, err := encode(c.enc[:0])
	if err == nil {
		c.enc = payload
		frame := wire.AppendFrame(nil, payload)
		_, err = c.bw.Write(frame)
		if err == nil {
			err = c.bw.Flush()
		}
	}
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		c.pmu.Lock()
		err := c.err
		c.pmu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	return resp, nil
}

// Do executes one batch as a single atomic transaction on the server
// and returns one Result per op, in op order. Concurrent Do calls
// pipeline over the connection. The returned error is nil only when the
// batch committed (and, under DurabilitySync, its redo record is
// durable); see the package comment for the typed failure modes.
func (c *Client) Do(b *Batch) ([]Result, error) {
	if len(b.ops) == 0 {
		return nil, fmt.Errorf("stmnet: empty batch")
	}
	id := c.nextID.Add(1)
	req := wire.TxnReq{ID: id, Flags: b.flags, Ops: b.ops}
	payload, err := c.roundTrip(id, func(buf []byte) ([]byte, error) {
		return wire.AppendTxnReq(buf, &req)
	})
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeTxnResp(payload)
	if err != nil {
		return nil, err
	}
	if resp.ID != id {
		return nil, fmt.Errorf("stmnet: response id %d for request %d", resp.ID, id)
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(b.ops) {
		return nil, fmt.Errorf("stmnet: %d results for %d ops", len(resp.Results), len(b.ops))
	}
	out := make([]Result, len(resp.Results))
	for i := range resp.Results {
		out[i] = Result{Flag: resp.Results[i].Flag, Vals: resp.Results[i].Vals}
	}
	return out, nil
}

// Stats fetches the server's statistics snapshot: its own counters plus
// the embedded runtime's partition statistics, commit-latency histogram,
// pool counters and (when durable) redo-log counters.
func (c *Client) Stats() (*wire.StatsPayload, error) {
	id := c.nextID.Add(1)
	payload, err := c.roundTrip(id, func(buf []byte) ([]byte, error) {
		return wire.AppendStatsReq(buf, &wire.StatsReq{ID: id}), nil
	})
	if err != nil {
		return nil, err
	}
	resp, body, err := wire.DecodeStatsResp(payload)
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		return nil, fmt.Errorf("stmnet: stats: %s: %s", resp.Status, resp.Msg)
	}
	var p wire.StatsPayload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("stmnet: stats payload: %w", err)
	}
	return &p, nil
}

// Result is one op's outcome, mirroring wire.Result: for GET, Flag is
// "found" and Vals the value vector; for ADD, Vals[0] is the post-add
// word; for CAS, Flag is "swapped" and Vals[0] the observed old word;
// for PUT, Flag is always true.
type Result struct {
	Flag bool
	Vals []uint64
}

// Val returns Vals[0], or 0 when absent — the common single-word read.
func (r Result) Val() uint64 {
	if len(r.Vals) == 0 {
		return 0
	}
	return r.Vals[0]
}

// ServerStats re-exports the server counter block for report code.
type ServerStats = wire.ServerStats

// StatsPayload re-exports the full statistics payload.
type StatsPayload = wire.StatsPayload

// Neg converts a positive decrement into OpAdd's two's-complement
// delta: Add(key, Neg(10)) subtracts 10 from word 0.
func Neg(n uint64) uint64 { return ^n + 1 }

// Batch builds one atomic multi-key transaction. Methods chain; ops
// execute (and their results index) in append order.
type Batch struct {
	ops   []wire.Op
	flags uint8
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Get reads key's whole value vector.
func (b *Batch) Get(key string) *Batch {
	b.ops = append(b.ops, wire.Op{Code: wire.OpGet, Key: key})
	return b
}

// Put writes key's value vector (creating the key). Fewer words than
// the space's arity zero-fill the tail; more than the arity is a
// BadRequest.
func (b *Batch) Put(key string, vals ...uint64) *Batch {
	b.ops = append(b.ops, wire.Op{Code: wire.OpPut, Key: key, Vals: vals})
	return b
}

// Add adds delta (two's-complement; see Neg) to key's word 0, creating
// the key as zero first.
func (b *Batch) Add(key string, delta uint64) *Batch {
	b.ops = append(b.ops, wire.Op{Code: wire.OpAdd, Key: key, Delta: delta})
	return b
}

// CAS compares key's word 0 with expect and stores new on match,
// creating the key as zero first.
func (b *Batch) CAS(key string, expect, new uint64) *Batch {
	b.ops = append(b.ops, wire.Op{Code: wire.OpCAS, Key: key, Expect: expect, New: new})
	return b
}

// ForceUpdate sends an all-GET batch down the server's ordinary
// update-mode path instead of the snapshot-mode read path (measurement
// escape hatch).
func (b *Batch) ForceUpdate() *Batch {
	b.flags |= wire.FlagUpdate
	return b
}

// Len returns the number of ops queued so far.
func (b *Batch) Len() int { return len(b.ops) }
