package txds

import "repro/stm"

// RBTree is a red-black tree (CLRS layout: parent pointers plus a single
// heap-resident black sentinel standing for every leaf). It is the
// workhorse of the application benchmarks — vacation's reservation tables
// are red-black trees — and the structure the paper's visible-vs-invisible
// discussion uses as its low-update example.
type RBTree struct {
	rootCell stm.Addr // one-word cell holding the root node address
	nilNode  stm.Addr // shared black sentinel
	nodeSite stm.SiteID
}

// Node layout: [0]=key, [1]=val, [2]=left, [3]=right, [4]=parent,
// [5]=color.
const (
	rbLeft   = 2
	rbRight  = 3
	rbParent = 4
	rbColor  = 5

	rbNodeWords = 6

	red   uint64 = 0
	black uint64 = 1
)

// NewRBTree creates an empty tree with sites "<name>.root" and
// "<name>.node".
func NewRBTree(tx *stm.Tx, rt *stm.Runtime, name string) *RBTree {
	rootSite := rt.RegisterSite(name + ".root")
	nodeSite := rt.RegisterSite(name + ".node")
	t := &RBTree{nodeSite: nodeSite}
	t.nilNode = tx.Alloc(nodeSite, rbNodeWords)
	tx.Store(t.nilNode+offKey, 0)
	tx.Store(t.nilNode+offVal, 0)
	tx.StoreAddr(t.nilNode+rbLeft, t.nilNode)
	tx.StoreAddr(t.nilNode+rbRight, t.nilNode)
	tx.StoreAddr(t.nilNode+rbParent, t.nilNode)
	tx.Store(t.nilNode+rbColor, black)
	t.rootCell = tx.Alloc(rootSite, 1)
	tx.StoreAddr(t.rootCell, t.nilNode)
	return t
}

func (t *RBTree) root(tx *stm.Tx) stm.Addr       { return tx.LoadAddr(t.rootCell) }
func (t *RBTree) setRoot(tx *stm.Tx, n stm.Addr) { tx.StoreAddr(t.rootCell, n) }

func key(tx *stm.Tx, n stm.Addr) uint64         { return tx.Load(n + offKey) }
func left(tx *stm.Tx, n stm.Addr) stm.Addr      { return tx.LoadAddr(n + rbLeft) }
func right(tx *stm.Tx, n stm.Addr) stm.Addr     { return tx.LoadAddr(n + rbRight) }
func parent(tx *stm.Tx, n stm.Addr) stm.Addr    { return tx.LoadAddr(n + rbParent) }
func color(tx *stm.Tx, n stm.Addr) uint64       { return tx.Load(n + rbColor) }
func setLeft(tx *stm.Tx, n, c stm.Addr)         { tx.StoreAddr(n+rbLeft, c) }
func setRight(tx *stm.Tx, n, c stm.Addr)        { tx.StoreAddr(n+rbRight, c) }
func setParent(tx *stm.Tx, n, p stm.Addr)       { tx.StoreAddr(n+rbParent, p) }
func setColor(tx *stm.Tx, n stm.Addr, c uint64) { tx.Store(n+rbColor, c) }

// Lookup returns the value stored under k.
func (t *RBTree) Lookup(tx *stm.Tx, k uint64) (uint64, bool) {
	n := t.root(tx)
	for n != t.nilNode {
		nk := key(tx, n)
		switch {
		case k < nk:
			n = left(tx, n)
		case k > nk:
			n = right(tx, n)
		default:
			return tx.Load(n + offVal), true
		}
	}
	return 0, false
}

// Contains reports set membership.
func (t *RBTree) Contains(tx *stm.Tx, k uint64) bool {
	_, ok := t.Lookup(tx, k)
	return ok
}

func (t *RBTree) leftRotate(tx *stm.Tx, x stm.Addr) {
	y := right(tx, x)
	setRight(tx, x, left(tx, y))
	if left(tx, y) != t.nilNode {
		setParent(tx, left(tx, y), x)
	}
	setParent(tx, y, parent(tx, x))
	px := parent(tx, x)
	switch {
	case px == t.nilNode:
		t.setRoot(tx, y)
	case x == left(tx, px):
		setLeft(tx, px, y)
	default:
		setRight(tx, px, y)
	}
	setLeft(tx, y, x)
	setParent(tx, x, y)
}

func (t *RBTree) rightRotate(tx *stm.Tx, x stm.Addr) {
	y := left(tx, x)
	setLeft(tx, x, right(tx, y))
	if right(tx, y) != t.nilNode {
		setParent(tx, right(tx, y), x)
	}
	setParent(tx, y, parent(tx, x))
	px := parent(tx, x)
	switch {
	case px == t.nilNode:
		t.setRoot(tx, y)
	case x == right(tx, px):
		setRight(tx, px, y)
	default:
		setLeft(tx, px, y)
	}
	setRight(tx, y, x)
	setParent(tx, x, y)
}

// Insert adds k→v if absent; reports whether it inserted.
func (t *RBTree) Insert(tx *stm.Tx, k, v uint64) bool {
	y := t.nilNode
	x := t.root(tx)
	for x != t.nilNode {
		y = x
		xk := key(tx, x)
		switch {
		case k < xk:
			x = left(tx, x)
		case k > xk:
			x = right(tx, x)
		default:
			return false
		}
	}
	z := tx.Alloc(t.nodeSite, rbNodeWords)
	tx.Store(z+offKey, k)
	tx.Store(z+offVal, v)
	setLeft(tx, z, t.nilNode)
	setRight(tx, z, t.nilNode)
	setParent(tx, z, y)
	setColor(tx, z, red)
	switch {
	case y == t.nilNode:
		t.setRoot(tx, z)
	case k < key(tx, y):
		setLeft(tx, y, z)
	default:
		setRight(tx, y, z)
	}
	t.insertFixup(tx, z)
	return true
}

// Set stores k→v (upsert); reports whether the key was newly inserted.
func (t *RBTree) Set(tx *stm.Tx, k, v uint64) bool {
	n := t.root(tx)
	for n != t.nilNode {
		nk := key(tx, n)
		switch {
		case k < nk:
			n = left(tx, n)
		case k > nk:
			n = right(tx, n)
		default:
			tx.Store(n+offVal, v)
			return false
		}
	}
	return t.Insert(tx, k, v)
}

func (t *RBTree) insertFixup(tx *stm.Tx, z stm.Addr) {
	for color(tx, parent(tx, z)) == red {
		zp := parent(tx, z)
		zpp := parent(tx, zp)
		if zp == left(tx, zpp) {
			y := right(tx, zpp)
			if color(tx, y) == red {
				setColor(tx, zp, black)
				setColor(tx, y, black)
				setColor(tx, zpp, red)
				z = zpp
				continue
			}
			if z == right(tx, zp) {
				z = zp
				t.leftRotate(tx, z)
				zp = parent(tx, z)
				zpp = parent(tx, zp)
			}
			setColor(tx, zp, black)
			setColor(tx, zpp, red)
			t.rightRotate(tx, zpp)
		} else {
			y := left(tx, zpp)
			if color(tx, y) == red {
				setColor(tx, zp, black)
				setColor(tx, y, black)
				setColor(tx, zpp, red)
				z = zpp
				continue
			}
			if z == left(tx, zp) {
				z = zp
				t.rightRotate(tx, z)
				zp = parent(tx, z)
				zpp = parent(tx, zp)
			}
			setColor(tx, zp, black)
			setColor(tx, zpp, red)
			t.leftRotate(tx, zpp)
		}
	}
	setColor(tx, t.root(tx), black)
}

// transplant replaces subtree u with subtree v (CLRS RB-TRANSPLANT).
func (t *RBTree) transplant(tx *stm.Tx, u, v stm.Addr) {
	up := parent(tx, u)
	switch {
	case up == t.nilNode:
		t.setRoot(tx, v)
	case u == left(tx, up):
		setLeft(tx, up, v)
	default:
		setRight(tx, up, v)
	}
	setParent(tx, v, up) // the sentinel's parent is set too; deleteFixup relies on it
}

func (t *RBTree) minimum(tx *stm.Tx, n stm.Addr) stm.Addr {
	for left(tx, n) != t.nilNode {
		n = left(tx, n)
	}
	return n
}

// Min returns the smallest key (ok=false when empty).
func (t *RBTree) Min(tx *stm.Tx) (uint64, bool) {
	r := t.root(tx)
	if r == t.nilNode {
		return 0, false
	}
	return key(tx, t.minimum(tx, r)), true
}

// Remove deletes k, returning its value.
func (t *RBTree) Remove(tx *stm.Tx, k uint64) (uint64, bool) {
	z := t.root(tx)
	for z != t.nilNode {
		zk := key(tx, z)
		switch {
		case k < zk:
			z = left(tx, z)
		case k > zk:
			z = right(tx, z)
		default:
			v := tx.Load(z + offVal)
			t.delete(tx, z)
			return v, true
		}
	}
	return 0, false
}

func (t *RBTree) delete(tx *stm.Tx, z stm.Addr) {
	y := z
	yOrig := color(tx, y)
	var x stm.Addr
	switch {
	case left(tx, z) == t.nilNode:
		x = right(tx, z)
		t.transplant(tx, z, x)
	case right(tx, z) == t.nilNode:
		x = left(tx, z)
		t.transplant(tx, z, x)
	default:
		y = t.minimum(tx, right(tx, z))
		yOrig = color(tx, y)
		x = right(tx, y)
		if parent(tx, y) == z {
			setParent(tx, x, y)
		} else {
			t.transplant(tx, y, x)
			setRight(tx, y, right(tx, z))
			setParent(tx, right(tx, y), y)
		}
		t.transplant(tx, z, y)
		setLeft(tx, y, left(tx, z))
		setParent(tx, left(tx, y), y)
		setColor(tx, y, color(tx, z))
	}
	if yOrig == black {
		t.deleteFixup(tx, x)
	}
	tx.Free(z, rbNodeWords)
}

func (t *RBTree) deleteFixup(tx *stm.Tx, x stm.Addr) {
	for x != t.root(tx) && color(tx, x) == black {
		xp := parent(tx, x)
		if x == left(tx, xp) {
			w := right(tx, xp)
			if color(tx, w) == red {
				setColor(tx, w, black)
				setColor(tx, xp, red)
				t.leftRotate(tx, xp)
				w = right(tx, xp)
			}
			if color(tx, left(tx, w)) == black && color(tx, right(tx, w)) == black {
				setColor(tx, w, red)
				x = xp
				continue
			}
			if color(tx, right(tx, w)) == black {
				setColor(tx, left(tx, w), black)
				setColor(tx, w, red)
				t.rightRotate(tx, w)
				w = right(tx, xp)
			}
			setColor(tx, w, color(tx, xp))
			setColor(tx, xp, black)
			setColor(tx, right(tx, w), black)
			t.leftRotate(tx, xp)
			x = t.root(tx)
		} else {
			w := left(tx, xp)
			if color(tx, w) == red {
				setColor(tx, w, black)
				setColor(tx, xp, red)
				t.rightRotate(tx, xp)
				w = left(tx, xp)
			}
			if color(tx, right(tx, w)) == black && color(tx, left(tx, w)) == black {
				setColor(tx, w, red)
				x = xp
				continue
			}
			if color(tx, left(tx, w)) == black {
				setColor(tx, right(tx, w), black)
				setColor(tx, w, red)
				t.leftRotate(tx, w)
				w = left(tx, xp)
			}
			setColor(tx, w, color(tx, xp))
			setColor(tx, xp, black)
			setColor(tx, left(tx, w), black)
			t.rightRotate(tx, xp)
			x = t.root(tx)
		}
	}
	setColor(tx, x, black)
}

// Len counts elements (in-order walk).
func (t *RBTree) Len(tx *stm.Tx) int {
	n := 0
	t.walk(tx, t.root(tx), func(node stm.Addr) { n++ })
	return n
}

// Keys returns all keys in ascending order.
func (t *RBTree) Keys(tx *stm.Tx) []uint64 {
	var out []uint64
	t.walk(tx, t.root(tx), func(n stm.Addr) { out = append(out, key(tx, n)) })
	return out
}

func (t *RBTree) walk(tx *stm.Tx, n stm.Addr, f func(stm.Addr)) {
	if n == t.nilNode {
		return
	}
	t.walk(tx, left(tx, n), f)
	f(n)
	t.walk(tx, right(tx, n), f)
}

// CheckInvariants validates the red-black properties within tx: root is
// black, no red node has a red child, every root-to-leaf path has the
// same black height, and keys are ordered. It returns a descriptive
// failure or "" when the tree is well-formed. Used by tests and failure
// injection.
func (t *RBTree) CheckInvariants(tx *stm.Tx) string {
	r := t.root(tx)
	if r == t.nilNode {
		return ""
	}
	if color(tx, r) != black {
		return "root is red"
	}
	_, msg := t.check(tx, r, 0, ^uint64(0))
	return msg
}

// check returns (black-height, failure message).
func (t *RBTree) check(tx *stm.Tx, n stm.Addr, lo, hi uint64) (int, string) {
	if n == t.nilNode {
		return 1, ""
	}
	k := key(tx, n)
	if k < lo || k > hi {
		return 0, "key ordering violated"
	}
	if color(tx, n) == red {
		if color(tx, left(tx, n)) == red || color(tx, right(tx, n)) == red {
			return 0, "red node with red child"
		}
	}
	var lhi, rlo uint64
	if k > 0 {
		lhi = k - 1
	}
	rlo = k + 1
	lh, msg := t.check(tx, left(tx, n), lo, lhi)
	if msg != "" {
		return 0, msg
	}
	rh, msg := t.check(tx, right(tx, n), rlo, hi)
	if msg != "" {
		return 0, msg
	}
	if lh != rh {
		return 0, "black-height mismatch"
	}
	if color(tx, n) == black {
		lh++
	}
	return lh, ""
}
