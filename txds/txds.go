// Package txds provides transactional data structures built on the stm
// heap: a sorted linked list, a skip list, a red-black tree, a hash set,
// a FIFO queue, a double-ended queue, a LIFO stack, a min-priority queue
// and a counter array.
//
// These are the workloads of the paper's evaluation: the integer-set
// microbenchmarks (list, skip list, red-black tree, hash set) and the
// building blocks of the application benchmarks (vacation's reservation
// tables are red-black trees; bank uses a counter array).
//
// Every structure allocates its nodes at named allocation sites
// ("<name>.node", "<name>.head", ...) and links them with Tx.StoreAddr,
// so a profiling run discovers each structure as one connected component
// and the partitioner places it in its own partition.
//
// Structures with fixed-size nodes (list, queue) model them as typed
// objects (stm.Ref): a traversal loads each node with one multi-word
// read instead of one word at a time, and node publication is one
// multi-word write whose snapshot-history records group contiguously —
// link fields still go through Tx.StoreAddr so profiling sees the edges.
//
// All operations take the Tx of an enclosing atomic block; structures are
// safe for concurrent use through transactions. Keys and values are
// uint64; key 0 is valid.
package txds

// Structure field offsets shared by this package's node layouts.
const (
	offKey  = 0
	offVal  = 1
	offNext = 2
)
