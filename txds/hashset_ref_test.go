package txds

import (
	"testing"

	"repro/stm"
)

// TestHashSetInsertRefProfilingEdge: InsertRef stores its value word
// through StoreAddr, so a profiling run records the node→value-object
// pointer edge and the partition analysis groups the value site with the
// directory's sites — the property the network server's keyed object
// space relies on.
func TestHashSetInsertRefProfilingEdge(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 20})
	valSite := rt.RegisterSite("dir.value")
	rt.StartProfiling()
	th := rt.MustAttach()
	var hs *HashSet
	th.Atomic(func(tx *stm.Tx) {
		hs = NewHashSet(tx, rt, "dir", 16)
	})
	vals := make(map[uint64]stm.Addr)
	for i := uint64(0); i < 32; i++ {
		th.Atomic(func(tx *stm.Tx) {
			obj := tx.Alloc(valSite, 4)
			tx.Store(obj, i*100)
			if !hs.InsertRef(tx, i, obj) {
				t.Fatalf("InsertRef(%d) found a duplicate", i)
			}
			vals[i] = obj
		})
	}
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		t.Fatal(err)
	}
	// dir.buckets, dir.node and dir.value must share one partition.
	var part stm.PartID
	th.Atomic(func(tx *stm.Tx) {
		addr, ok := hs.Lookup(tx, 3)
		if !ok {
			t.Fatal("key 3 lost")
		}
		if stm.Addr(addr) != vals[3] {
			t.Fatalf("Lookup(3) = %#x, want %#x", addr, vals[3])
		}
		part = rt.PartitionOf(stm.Addr(addr))
	})
	if dirPart := rt.PartitionOf(hs.buckets); dirPart != part {
		t.Fatalf("value objects in partition %d, directory in %d — InsertRef edge not profiled\n%s",
			part, dirPart, plan.Describe(rt.Sites()))
	}
	// InsertRef refuses duplicates like Insert.
	th.Atomic(func(tx *stm.Tx) {
		if hs.InsertRef(tx, 3, vals[3]) {
			t.Fatal("duplicate InsertRef succeeded")
		}
	})
	rt.Detach(th)
}
