package txds

import (
	"sync/atomic"

	"repro/stm"
)

// PriorityQueue is a min-priority queue backed by a skip list that admits
// duplicate priorities (elements of equal priority pop in unspecified
// order). Its access pattern is asymmetric in a way plain sets are not:
// PopMin hammers the minimum end of the structure (hot prefix), while
// Insert lands anywhere — so the minimum's orec sees queue-like contention
// and the tail sees set-like contention. This makes it a useful partition
// specimen between Queue (all-hot) and SkipList (all-cold).
type PriorityQueue struct {
	head     stm.Addr // head tower: [0]=level, [1..1+MaxLevel) next pointers
	nodeSite stm.SiteID
	seed     atomic.Uint64
}

// Priority-queue node layout matches the skip list:
// [0]=priority, [1]=val, [2]=level, [3..3+level) nexts.

// NewPriorityQueue creates an empty priority queue with sites
// "<name>.head" and "<name>.node".
func NewPriorityQueue(tx *stm.Tx, rt *stm.Runtime, name string, seed uint64) *PriorityQueue {
	headSite := rt.RegisterSite(name + ".head")
	nodeSite := rt.RegisterSite(name + ".node")
	head := tx.Alloc(headSite, slHeadWords)
	tx.Store(head, SkipListMaxLevel)
	for i := 0; i < SkipListMaxLevel; i++ {
		tx.Store(head+slHeadBase+stm.Addr(i), uint64(stm.Nil))
	}
	q := &PriorityQueue{head: head, nodeSite: nodeSite}
	q.seed.Store(seed*2654435761 + 0x9E3779B97F4A7C15)
	return q
}

func (q *PriorityQueue) randLevel() int {
	z := q.seed.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	lvl := 1
	for z&1 == 1 && lvl < SkipListMaxLevel {
		lvl++
		z >>= 1
	}
	return lvl
}

func (q *PriorityQueue) nextCell(node stm.Addr, i int) stm.Addr {
	if node == q.head {
		return q.head + slHeadBase + stm.Addr(i)
	}
	return node + slNextBase + stm.Addr(i)
}

// Insert adds an element with the given priority. Duplicates are allowed:
// the new element is placed after existing elements of equal priority.
func (q *PriorityQueue) Insert(tx *stm.Tx, prio, val uint64) {
	var preds [SkipListMaxLevel]stm.Addr
	x := q.head
	for i := SkipListMaxLevel - 1; i >= 0; i-- {
		for {
			nxt := tx.LoadAddr(q.nextCell(x, i))
			if nxt == stm.Nil || tx.Load(nxt+offKey) > prio {
				break
			}
			x = nxt
		}
		preds[i] = x
	}
	lvl := q.randLevel()
	n := tx.Alloc(q.nodeSite, slNextBase+lvl)
	tx.Store(n+offKey, prio)
	tx.Store(n+offVal, val)
	tx.Store(n+slLevel, uint64(lvl))
	for i := 0; i < lvl; i++ {
		tx.StoreAddr(n+slNextBase+stm.Addr(i), tx.LoadAddr(q.nextCell(preds[i], i)))
		tx.StoreAddr(q.nextCell(preds[i], i), n)
	}
}

// Min returns the minimum-priority element without removing it.
func (q *PriorityQueue) Min(tx *stm.Tx) (prio, val uint64, ok bool) {
	first := tx.LoadAddr(q.head + slHeadBase)
	if first == stm.Nil {
		return 0, 0, false
	}
	return tx.Load(first + offKey), tx.Load(first + offVal), true
}

// PopMin removes and returns the minimum-priority element.
func (q *PriorityQueue) PopMin(tx *stm.Tx) (prio, val uint64, ok bool) {
	first := tx.LoadAddr(q.head + slHeadBase)
	if first == stm.Nil {
		return 0, 0, false
	}
	prio = tx.Load(first + offKey)
	val = tx.Load(first + offVal)
	lvl := int(tx.Load(first + slLevel))
	for i := 0; i < lvl; i++ {
		// The minimum node is the first at every level it occupies.
		tx.StoreAddr(q.head+slHeadBase+stm.Addr(i), tx.LoadAddr(first+slNextBase+stm.Addr(i)))
	}
	tx.Free(first, slNextBase+lvl)
	return prio, val, true
}

// Len counts queued elements.
func (q *PriorityQueue) Len(tx *stm.Tx) int {
	n := 0
	for x := tx.LoadAddr(q.head + slHeadBase); x != stm.Nil; x = tx.LoadAddr(x + slNextBase) {
		n++
	}
	return n
}

// Drain pops every element ascending and returns the (priority, value)
// pairs; used by tests and by batch consumers.
func (q *PriorityQueue) Drain(tx *stm.Tx) (prios, vals []uint64) {
	for {
		p, v, ok := q.PopMin(tx)
		if !ok {
			return prios, vals
		}
		prios = append(prios, p)
		vals = append(vals, v)
	}
}
