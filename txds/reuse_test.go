package txds

import (
	"math/rand"
	"sync"
	"testing"

	"repro/stm"
)

// TestNodeRecyclingBoundsHeap cycles insert/remove far beyond the heap
// capacity; per-thread free lists must recycle nodes so the arena's
// block-in-use count stabilizes instead of growing with operation count.
func TestNodeRecyclingBoundsHeap(t *testing.T) {
	rt, err := stm.New(stm.Config{HeapWords: 1 << 16, BlockShift: 8})
	if err != nil {
		t.Fatal(err)
	}
	th := rt.MustAttach()
	defer rt.Detach(th)
	structures := map[string]setAPI{}
	th.Atomic(func(tx *stm.Tx) {
		structures["list"] = NewList(tx, rt, "reuse.list")
		structures["skiplist"] = NewSkipList(tx, rt, "reuse.skip", 9)
		structures["rbtree"] = NewRBTree(tx, rt, "reuse.tree")
		structures["hashset"] = NewHashSet(tx, rt, "reuse.hash", 32)
	})
	for name, s := range structures {
		t.Run(name, func(t *testing.T) {
			// Prime: one full population to reach the steady footprint.
			for k := uint64(0); k < 64; k++ {
				th.Atomic(func(tx *stm.Tx) { s.Insert(tx, k, k) })
			}
			for k := uint64(0); k < 64; k++ {
				th.Atomic(func(tx *stm.Tx) { s.Remove(tx, k) })
			}
			base := rt.HeapInUseBlocks()
			// Churn: 50 more populate/drain cycles must not grow the heap by
			// more than a couple of blocks (allocator slack), far below the
			// ~50x growth leaking nodes would cause.
			for cycle := 0; cycle < 50; cycle++ {
				for k := uint64(0); k < 64; k++ {
					th.Atomic(func(tx *stm.Tx) { s.Insert(tx, k, k) })
				}
				for k := uint64(0); k < 64; k++ {
					th.Atomic(func(tx *stm.Tx) { s.Remove(tx, k) })
				}
			}
			grown := rt.HeapInUseBlocks() - base
			if grown > 4 {
				t.Fatalf("heap grew %d blocks over churn; nodes are leaking", grown)
			}
		})
	}
}

// TestQueueDequeStackRecycling does the same bounded-footprint check for
// the container structures.
func TestQueueDequeStackRecycling(t *testing.T) {
	rt, err := stm.New(stm.Config{HeapWords: 1 << 16, BlockShift: 8})
	if err != nil {
		t.Fatal(err)
	}
	th := rt.MustAttach()
	defer rt.Detach(th)
	var q *Queue
	var d *Deque
	var s *Stack
	var p *PriorityQueue
	th.Atomic(func(tx *stm.Tx) {
		q = NewQueue(tx, rt, "reuse.q")
		d = NewDeque(tx, rt, "reuse.d")
		s = NewStack(tx, rt, "reuse.s")
		p = NewPriorityQueue(tx, rt, "reuse.p", 3)
	})
	churn := func(fill, drain func(i uint64)) {
		for c := 0; c < 30; c++ {
			for i := uint64(0); i < 32; i++ {
				fill(i)
			}
			for i := uint64(0); i < 32; i++ {
				drain(i)
			}
		}
	}
	churn(func(i uint64) { th.Atomic(func(tx *stm.Tx) { q.Enqueue(tx, i) }) },
		func(i uint64) { th.Atomic(func(tx *stm.Tx) { q.Dequeue(tx) }) })
	base := rt.HeapInUseBlocks()
	churn(func(i uint64) { th.Atomic(func(tx *stm.Tx) { q.Enqueue(tx, i) }) },
		func(i uint64) { th.Atomic(func(tx *stm.Tx) { q.Dequeue(tx) }) })
	churn(func(i uint64) { th.Atomic(func(tx *stm.Tx) { d.PushFront(tx, i) }) },
		func(i uint64) { th.Atomic(func(tx *stm.Tx) { d.PopBack(tx) }) })
	churn(func(i uint64) { th.Atomic(func(tx *stm.Tx) { s.Push(tx, i) }) },
		func(i uint64) { th.Atomic(func(tx *stm.Tx) { s.Pop(tx) }) })
	churn(func(i uint64) { th.Atomic(func(tx *stm.Tx) { p.Insert(tx, i%7, i) }) },
		func(i uint64) { th.Atomic(func(tx *stm.Tx) { p.PopMin(tx) }) })
	if grown := rt.HeapInUseBlocks() - base; grown > 6 {
		t.Fatalf("containers grew %d blocks over churn; nodes are leaking", grown)
	}
}

// TestRBTreeInvariantsUnderConcurrentChurn checks the red/black structure
// invariants (BST order, red-red, black height) hold after heavy
// concurrent mixed operations.
func TestRBTreeInvariantsUnderConcurrentChurn(t *testing.T) {
	rt := newRT(t)
	setup := rt.MustAttach()
	var tree *RBTree
	setup.Atomic(func(tx *stm.Tx) { tree = NewRBTree(tx, rt, "churn.tree") })
	rt.Detach(setup)
	const workers, perW, keyRange = 6, 1200, 512
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				k := uint64(rng.Intn(keyRange))
				switch rng.Intn(3) {
				case 0:
					th.Atomic(func(tx *stm.Tx) { tree.Insert(tx, k, k) })
				case 1:
					th.Atomic(func(tx *stm.Tx) { tree.Remove(tx, k) })
				default:
					th.ReadOnlyAtomic(func(tx *stm.Tx) { tree.Contains(tx, k) })
				}
			}
		}(int64(w) + 41)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		if msg := tree.CheckInvariants(tx); msg != "" {
			t.Fatal(msg)
		}
		keys := tree.Keys(tx)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("Keys not strictly ascending at %d: %d >= %d", i, keys[i-1], keys[i])
			}
		}
	})
}

// TestKeysSortedEverywhere checks every ordered structure reports keys in
// ascending order after random upserts.
func TestKeysSortedEverywhere(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var list *List
	var skip *SkipList
	var tree *RBTree
	th.Atomic(func(tx *stm.Tx) {
		list = NewList(tx, rt, "sort.list")
		skip = NewSkipList(tx, rt, "sort.skip", 77)
		tree = NewRBTree(tx, rt, "sort.tree")
	})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		k := rng.Uint64() % 10000
		th.Atomic(func(tx *stm.Tx) {
			list.Insert(tx, k, uint64(i))
			skip.Insert(tx, k, uint64(i))
			tree.Insert(tx, k, uint64(i))
		})
	}
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		for name, keys := range map[string][]uint64{
			"list": list.Keys(tx), "skiplist": skip.Keys(tx), "rbtree": tree.Keys(tx),
		} {
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					t.Fatalf("%s keys out of order at %d", name, i)
				}
			}
		}
		if a, b, c := list.Len(tx), skip.Len(tx), tree.Len(tx); a != b || b != c {
			t.Fatalf("structure sizes diverge: list=%d skip=%d tree=%d", a, b, c)
		}
	})
}
