package txds

import "repro/stm"

// HashSet is a fixed-bucket chained hash map. Its short transactions
// (hash, walk a short chain) make it the low-conflict structure of the
// intset family, and its bucket array is the showcase for
// conflict-detection granularity: with coarse orec mapping, operations on
// different buckets false-share orecs.
type HashSet struct {
	buckets  stm.Addr // [0]=nbuckets, [1..1+nbuckets) chain heads
	nbuckets uint64
	nodeSite stm.SiteID
}

const hsNodeWords = 3 // key, val, next

// NewHashSet creates a hash set with nbuckets chains (rounded up to a
// power of two) and sites "<name>.buckets" and "<name>.node".
func NewHashSet(tx *stm.Tx, rt *stm.Runtime, name string, nbuckets int) *HashSet {
	bSite := rt.RegisterSite(name + ".buckets")
	nSite := rt.RegisterSite(name + ".node")
	nb := uint64(1)
	for nb < uint64(nbuckets) {
		nb <<= 1
	}
	root := tx.Alloc(bSite, int(nb)+1)
	tx.Store(root, nb)
	for i := uint64(0); i < nb; i++ {
		tx.Store(root+1+stm.Addr(i), uint64(stm.Nil))
	}
	return &HashSet{buckets: root, nbuckets: nb, nodeSite: nSite}
}

// hash mixes k (splitmix64 finalizer) onto a bucket index.
func (h *HashSet) hash(k uint64) uint64 {
	z := k + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return (z ^ (z >> 31)) & (h.nbuckets - 1)
}

func (h *HashSet) bucketCell(k uint64) stm.Addr {
	return h.buckets + 1 + stm.Addr(h.hash(k))
}

// Lookup returns the value stored under k.
func (h *HashSet) Lookup(tx *stm.Tx, k uint64) (uint64, bool) {
	for n := tx.LoadAddr(h.bucketCell(k)); n != stm.Nil; n = tx.LoadAddr(n + offNext) {
		if tx.Load(n+offKey) == k {
			return tx.Load(n + offVal), true
		}
	}
	return 0, false
}

// Contains reports set membership.
func (h *HashSet) Contains(tx *stm.Tx, k uint64) bool {
	_, ok := h.Lookup(tx, k)
	return ok
}

// Insert adds k→v if absent; reports whether it inserted.
func (h *HashSet) Insert(tx *stm.Tx, k, v uint64) bool {
	cell := h.bucketCell(k)
	for n := tx.LoadAddr(cell); n != stm.Nil; n = tx.LoadAddr(n + offNext) {
		if tx.Load(n+offKey) == k {
			return false
		}
	}
	n := tx.Alloc(h.nodeSite, hsNodeWords)
	tx.Store(n+offKey, k)
	tx.Store(n+offVal, v)
	tx.StoreAddr(n+offNext, tx.LoadAddr(cell))
	tx.StoreAddr(cell, n)
	return true
}

// Set stores k→v (upsert); reports whether the key was newly inserted.
func (h *HashSet) Set(tx *stm.Tx, k, v uint64) bool {
	cell := h.bucketCell(k)
	for n := tx.LoadAddr(cell); n != stm.Nil; n = tx.LoadAddr(n + offNext) {
		if tx.Load(n+offKey) == k {
			tx.Store(n+offVal, v)
			return false
		}
	}
	return h.Insert(tx, k, v)
}

// Remove deletes k, returning its value.
func (h *HashSet) Remove(tx *stm.Tx, k uint64) (uint64, bool) {
	cell := h.bucketCell(k)
	for n := tx.LoadAddr(cell); n != stm.Nil; n = tx.LoadAddr(n + offNext) {
		if tx.Load(n+offKey) == k {
			v := tx.Load(n + offVal)
			tx.StoreAddr(cell, tx.LoadAddr(n+offNext))
			tx.Free(n, hsNodeWords)
			return v, true
		}
		cell = n + offNext
	}
	return 0, false
}

// Len counts all elements (walks every chain).
func (h *HashSet) Len(tx *stm.Tx) int {
	total := 0
	for b := uint64(0); b < h.nbuckets; b++ {
		for n := tx.LoadAddr(h.buckets + 1 + stm.Addr(b)); n != stm.Nil; n = tx.LoadAddr(n + offNext) {
			total++
		}
	}
	return total
}

// NumBuckets returns the bucket count.
func (h *HashSet) NumBuckets() uint64 { return h.nbuckets }
