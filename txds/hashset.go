package txds

import "repro/stm"

// HashSet is a fixed-bucket chained hash map. Its short transactions
// (hash, walk a short chain) make it the low-conflict structure of the
// intset family, and its bucket array is the showcase for
// conflict-detection granularity: with coarse orec mapping, operations on
// different buckets false-share orecs.
//
// Nodes are typed objects (stm.Ref[hsNode]): a chain walk loads each
// node with one multi-word read instead of one read per field, so a
// lookup costs one footprint touch per node and snapshot readers
// reconstruct each node from the version store with a single index
// probe. Chain links still go through StoreAddr so profiling runs see
// the bucket→node and node→node edges.
type HashSet struct {
	buckets  stm.Addr // [0]=nbuckets, [1..1+nbuckets) chain heads
	nbuckets uint64
	nodeSite stm.SiteID
}

// hsNode is the heap layout of one chain node. Field order mirrors the
// word offsets (hsKey, hsVal, hsNext).
type hsNode struct {
	Key  uint64
	Val  uint64
	Next stm.Addr
}

const (
	hsKey  = 0
	hsVal  = 1
	hsNext = 2
)

// NewHashSet creates a hash set with nbuckets chains (rounded up to a
// power of two) and sites "<name>.buckets" and "<name>.node".
func NewHashSet(tx *stm.Tx, rt *stm.Runtime, name string, nbuckets int) *HashSet {
	bSite := rt.RegisterSite(name + ".buckets")
	nSite := rt.RegisterSite(name + ".node")
	nb := uint64(1)
	for nb < uint64(nbuckets) {
		nb <<= 1
	}
	root := tx.Alloc(bSite, int(nb)+1)
	tx.Store(root, nb)
	for i := uint64(0); i < nb; i++ {
		tx.Store(root+1+stm.Addr(i), uint64(stm.Nil))
	}
	return &HashSet{buckets: root, nbuckets: nb, nodeSite: nSite}
}

// hash mixes k (splitmix64 finalizer) onto a bucket index.
func (h *HashSet) hash(k uint64) uint64 {
	z := k + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return (z ^ (z >> 31)) & (h.nbuckets - 1)
}

func (h *HashSet) bucketCell(k uint64) stm.Addr {
	return h.buckets + 1 + stm.Addr(h.hash(k))
}

// Lookup returns the value stored under k.
func (h *HashSet) Lookup(tx *stm.Tx, k uint64) (uint64, bool) {
	for a := tx.LoadAddr(h.bucketCell(k)); a != stm.Nil; {
		n := stm.RefAt[hsNode](a).Load(tx)
		if n.Key == k {
			return n.Val, true
		}
		a = n.Next
	}
	return 0, false
}

// Contains reports set membership.
func (h *HashSet) Contains(tx *stm.Tx, k uint64) bool {
	_, ok := h.Lookup(tx, k)
	return ok
}

// Insert adds k→v if absent; reports whether it inserted.
func (h *HashSet) Insert(tx *stm.Tx, k, v uint64) bool {
	return h.insert(tx, k, v, false)
}

// InsertRef adds k→addr if absent, storing the value word through
// StoreAddr so a profiling run records the node→target pointer edge —
// the entry point for directories whose values are heap objects (e.g.
// the network server's keyed object space, which maps interned key
// hashes to value-object addresses). Reports whether it inserted.
func (h *HashSet) InsertRef(tx *stm.Tx, k uint64, addr stm.Addr) bool {
	return h.insert(tx, k, uint64(addr), true)
}

func (h *HashSet) insert(tx *stm.Tx, k, v uint64, link bool) bool {
	cell := h.bucketCell(k)
	for a := tx.LoadAddr(cell); a != stm.Nil; {
		n := stm.RefAt[hsNode](a).Load(tx)
		if n.Key == k {
			return false
		}
		a = n.Next
	}
	head := tx.LoadAddr(cell)
	n := stm.AllocRef[hsNode](tx, h.nodeSite)
	n.Store(tx, hsNode{Key: k, Val: v, Next: head})
	if link {
		// Re-store the value word through StoreAddr: same committed
		// bits, plus the profiling edge node→value-object.
		tx.StoreAddr(n.WordAddr(hsVal), stm.Addr(v))
	}
	tx.StoreAddr(n.WordAddr(hsNext), head)
	tx.StoreAddr(cell, n.Addr())
	return true
}

// Set stores k→v (upsert); reports whether the key was newly inserted.
func (h *HashSet) Set(tx *stm.Tx, k, v uint64) bool {
	cell := h.bucketCell(k)
	for a := tx.LoadAddr(cell); a != stm.Nil; {
		ref := stm.RefAt[hsNode](a)
		n := ref.Load(tx)
		if n.Key == k {
			n.Val = v
			ref.Store(tx, n)
			return false
		}
		a = n.Next
	}
	return h.Insert(tx, k, v)
}

// Remove deletes k, returning its value. The unlink rewrites the
// predecessor's link word (the bucket cell for the chain head) through
// StoreAddr.
func (h *HashSet) Remove(tx *stm.Tx, k uint64) (uint64, bool) {
	cell := h.bucketCell(k)
	for a := tx.LoadAddr(cell); a != stm.Nil; {
		ref := stm.RefAt[hsNode](a)
		n := ref.Load(tx)
		if n.Key == k {
			tx.StoreAddr(cell, n.Next)
			ref.Free(tx)
			return n.Val, true
		}
		cell = ref.WordAddr(hsNext)
		a = n.Next
	}
	return 0, false
}

// Len counts all elements (walks every chain).
func (h *HashSet) Len(tx *stm.Tx) int {
	total := 0
	for b := uint64(0); b < h.nbuckets; b++ {
		for a := tx.LoadAddr(h.buckets + 1 + stm.Addr(b)); a != stm.Nil; {
			total++
			a = stm.RefAt[hsNode](a).Load(tx).Next
		}
	}
	return total
}

// NumBuckets returns the bucket count.
func (h *HashSet) NumBuckets() uint64 { return h.nbuckets }
