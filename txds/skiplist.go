package txds

import (
	"sync/atomic"

	"repro/stm"
)

// SkipListMaxLevel bounds skip-list towers.
const SkipListMaxLevel = 12

// SkipList is a sorted map with probabilistic O(log n) search; compared
// to List it has short read paths, which shifts its sweet spot toward
// invisible reads even at moderate update ratios.
type SkipList struct {
	head     stm.Addr // head tower: [0]=level, [1..1+MaxLevel) next pointers
	nodeSite stm.SiteID
	seed     atomic.Uint64
}

// Skip-list node layout: [0]=key, [1]=val, [2]=level, [3..3+level) nexts.
const (
	slLevel     = 2
	slNextBase  = 3
	slHeadBase  = 1 // head tower nexts start at head+1
	slHeadWords = 1 + SkipListMaxLevel
)

// NewSkipList creates an empty skip list with sites "<name>.head" and
// "<name>.node".
func NewSkipList(tx *stm.Tx, rt *stm.Runtime, name string, seed uint64) *SkipList {
	headSite := rt.RegisterSite(name + ".head")
	nodeSite := rt.RegisterSite(name + ".node")
	head := tx.Alloc(headSite, slHeadWords)
	tx.Store(head, SkipListMaxLevel)
	for i := 0; i < SkipListMaxLevel; i++ {
		tx.Store(head+slHeadBase+stm.Addr(i), uint64(stm.Nil))
	}
	s := &SkipList{head: head, nodeSite: nodeSite}
	s.seed.Store(seed*2654435761 + 0x9E3779B97F4A7C15)
	return s
}

// randLevel draws a tower height with P(level ≥ k) = 2^-(k-1). The PRNG
// state is engine-side (not transactional), so retries may draw different
// levels — harmless, the distribution is what matters.
func (s *SkipList) randLevel() int {
	z := s.seed.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	lvl := 1
	for z&1 == 1 && lvl < SkipListMaxLevel {
		lvl++
		z >>= 1
	}
	return lvl
}

// nextCell returns the address of node's level-i forward pointer; node
// may be the head tower.
func (s *SkipList) nextCell(node stm.Addr, i int) stm.Addr {
	if node == s.head {
		return s.head + slHeadBase + stm.Addr(i)
	}
	return node + slNextBase + stm.Addr(i)
}

// findPreds fills preds[0..MaxLevel) with the rightmost node at each
// level whose key < k, and returns the level-0 successor.
func (s *SkipList) findPreds(tx *stm.Tx, k uint64, preds *[SkipListMaxLevel]stm.Addr) stm.Addr {
	x := s.head
	for i := SkipListMaxLevel - 1; i >= 0; i-- {
		for {
			nxt := tx.LoadAddr(s.nextCell(x, i))
			if nxt == stm.Nil || tx.Load(nxt+offKey) >= k {
				break
			}
			x = nxt
		}
		preds[i] = x
	}
	return tx.LoadAddr(s.nextCell(x, 0))
}

// Lookup returns the value stored under k.
func (s *SkipList) Lookup(tx *stm.Tx, k uint64) (uint64, bool) {
	x := s.head
	for i := SkipListMaxLevel - 1; i >= 0; i-- {
		for {
			nxt := tx.LoadAddr(s.nextCell(x, i))
			if nxt == stm.Nil || tx.Load(nxt+offKey) > k {
				break
			}
			if tx.Load(nxt+offKey) == k {
				return tx.Load(nxt + offVal), true
			}
			x = nxt
		}
	}
	return 0, false
}

// Contains reports set membership.
func (s *SkipList) Contains(tx *stm.Tx, k uint64) bool {
	_, ok := s.Lookup(tx, k)
	return ok
}

// Insert adds k→v if absent; reports whether it inserted.
func (s *SkipList) Insert(tx *stm.Tx, k, v uint64) bool {
	var preds [SkipListMaxLevel]stm.Addr
	succ := s.findPreds(tx, k, &preds)
	if succ != stm.Nil && tx.Load(succ+offKey) == k {
		return false
	}
	lvl := s.randLevel()
	n := tx.Alloc(s.nodeSite, slNextBase+lvl)
	tx.Store(n+offKey, k)
	tx.Store(n+offVal, v)
	tx.Store(n+slLevel, uint64(lvl))
	for i := 0; i < lvl; i++ {
		tx.StoreAddr(n+slNextBase+stm.Addr(i), tx.LoadAddr(s.nextCell(preds[i], i)))
		tx.StoreAddr(s.nextCell(preds[i], i), n)
	}
	return true
}

// Remove deletes k, returning its value.
func (s *SkipList) Remove(tx *stm.Tx, k uint64) (uint64, bool) {
	var preds [SkipListMaxLevel]stm.Addr
	succ := s.findPreds(tx, k, &preds)
	if succ == stm.Nil || tx.Load(succ+offKey) != k {
		return 0, false
	}
	v := tx.Load(succ + offVal)
	lvl := int(tx.Load(succ + slLevel))
	for i := 0; i < lvl; i++ {
		if tx.LoadAddr(s.nextCell(preds[i], i)) == succ {
			tx.StoreAddr(s.nextCell(preds[i], i), tx.LoadAddr(succ+slNextBase+stm.Addr(i)))
		}
	}
	tx.Free(succ, slNextBase+lvl)
	return v, true
}

// Len counts elements via the level-0 chain.
func (s *SkipList) Len(tx *stm.Tx) int {
	n := 0
	for x := tx.LoadAddr(s.nextCell(s.head, 0)); x != stm.Nil; x = tx.LoadAddr(x + slNextBase) {
		n++
	}
	return n
}

// Keys returns all keys ascending.
func (s *SkipList) Keys(tx *stm.Tx) []uint64 {
	var out []uint64
	for x := tx.LoadAddr(s.nextCell(s.head, 0)); x != stm.Nil; x = tx.LoadAddr(x + slNextBase) {
		out = append(out, tx.Load(x+offKey))
	}
	return out
}
