package txds

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/stm"
)

// TestBTreeAgainstModel runs a long random op sequence against a map
// model, checking every result plus structural invariants periodically.
func TestBTreeAgainstModel(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var bt *BTree
	th.Atomic(func(tx *stm.Tx) { bt = NewBTree(tx, rt, "btm") })

	model := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(61))
	const keyRange = 300
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(keyRange))
		v := rng.Uint64()
		switch rng.Intn(5) {
		case 0, 1: // insert
			var got bool
			th.Atomic(func(tx *stm.Tx) { got = bt.Insert(tx, k, v) })
			_, existed := model[k]
			if got == existed {
				t.Fatalf("op %d: Insert(%d) = %v, existed=%v", i, k, got, existed)
			}
			if !existed {
				model[k] = v
			}
		case 2: // set (upsert)
			th.Atomic(func(tx *stm.Tx) { bt.Set(tx, k, v) })
			model[k] = v
		case 3: // remove
			var got uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) { got, ok = bt.Remove(tx, k) })
			want, existed := model[k]
			if ok != existed || (ok && got != want) {
				t.Fatalf("op %d: Remove(%d) = (%d,%v), model (%d,%v)", i, k, got, ok, want, existed)
			}
			delete(model, k)
		default: // lookup
			var got uint64
			var ok bool
			th.ReadOnlyAtomic(func(tx *stm.Tx) { got, ok = bt.Lookup(tx, k) })
			want, existed := model[k]
			if ok != existed || (ok && got != want) {
				t.Fatalf("op %d: Lookup(%d) = (%d,%v), model (%d,%v)", i, k, got, ok, want, existed)
			}
		}
		if i%250 == 0 {
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				if msg := bt.CheckInvariants(tx); msg != "" {
					t.Fatalf("op %d: %s", i, msg)
				}
				if n := bt.Len(tx); n != len(model) {
					t.Fatalf("op %d: Len = %d, model %d", i, n, len(model))
				}
			})
		}
	}
	// Final: full key comparison.
	want := make([]uint64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		got := bt.Keys(tx)
		if len(got) != len(want) {
			t.Fatalf("Keys len %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Keys[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}

// TestBTreeSplitsAndMerges drives the tree deep enough that splits,
// borrows, merges and root shrinks all occur, then drains it to empty.
func TestBTreeSplitsAndMerges(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var bt *BTree
	th.Atomic(func(tx *stm.Tx) { bt = NewBTree(tx, rt, "btsm") })
	const n = 2000
	perm := rand.New(rand.NewSource(67)).Perm(n)
	for _, k := range perm {
		kk := uint64(k)
		th.Atomic(func(tx *stm.Tx) {
			if !bt.Insert(tx, kk, kk*2) {
				t.Fatalf("fresh key %d rejected", kk)
			}
		})
	}
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		if msg := bt.CheckInvariants(tx); msg != "" {
			t.Fatal(msg)
		}
		if got := bt.Len(tx); got != n {
			t.Fatalf("Len = %d, want %d", got, n)
		}
	})
	// Remove in a different random order; every removal must succeed and
	// keep the invariants (checked in batches for speed).
	perm2 := rand.New(rand.NewSource(71)).Perm(n)
	for i, k := range perm2 {
		kk := uint64(k)
		th.Atomic(func(tx *stm.Tx) {
			v, ok := bt.Remove(tx, kk)
			if !ok || v != kk*2 {
				t.Fatalf("Remove(%d) = (%d,%v)", kk, v, ok)
			}
		})
		if i%200 == 0 {
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				if msg := bt.CheckInvariants(tx); msg != "" {
					t.Fatalf("after %d removals: %s", i+1, msg)
				}
			})
		}
	}
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		if got := bt.Len(tx); got != 0 {
			t.Fatalf("Len = %d after draining", got)
		}
	})
}

// TestBTreeProperty is the testing/quick law: inserting any key set then
// removing a subset leaves exactly the difference, in sorted order, with
// invariants intact.
func TestBTreeProperty(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	idx := 0
	f := func(ins []uint16, del []uint16) bool {
		idx++
		var bt *BTree
		th.Atomic(func(tx *stm.Tx) { bt = NewBTree(tx, rt, "btp"+itoa(idx)) })
		model := map[uint64]bool{}
		for _, k := range ins {
			kk := uint64(k)
			th.Atomic(func(tx *stm.Tx) { bt.Insert(tx, kk, kk) })
			model[kk] = true
		}
		for _, k := range del {
			kk := uint64(k)
			th.Atomic(func(tx *stm.Tx) { bt.Remove(tx, kk) })
			delete(model, kk)
		}
		ok := true
		th.ReadOnlyAtomic(func(tx *stm.Tx) {
			if msg := bt.CheckInvariants(tx); msg != "" {
				ok = false
				return
			}
			keys := bt.Keys(tx)
			if len(keys) != len(model) {
				ok = false
				return
			}
			for i, k := range keys {
				if !model[k] || (i > 0 && keys[i-1] >= k) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeConcurrent checks linear counting under concurrent disjoint
// inserts and a shared mixed phase with invariants at the end.
func TestBTreeConcurrent(t *testing.T) {
	rt := newRT(t)
	setup := rt.MustAttach()
	var bt *BTree
	setup.Atomic(func(tx *stm.Tx) { bt = NewBTree(tx, rt, "btc") })
	rt.Detach(setup)
	const workers, perW = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for i := 0; i < perW; i++ {
				k := uint64(id*perW + i) // disjoint ranges: all inserts fresh
				th.Atomic(func(tx *stm.Tx) {
					if !bt.Insert(tx, k, k) {
						t.Errorf("fresh key %d rejected", k)
					}
				})
			}
		}(w)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		if got := bt.Len(tx); got != workers*perW {
			t.Fatalf("Len = %d, want %d", got, workers*perW)
		}
		if msg := bt.CheckInvariants(tx); msg != "" {
			t.Fatal(msg)
		}
	})
}

// TestBTreeZeroAndMaxKeys exercises the key-domain edges.
func TestBTreeZeroAndMaxKeys(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var bt *BTree
	th.Atomic(func(tx *stm.Tx) { bt = NewBTree(tx, rt, "btz") })
	maxK := ^uint64(0)
	th.Atomic(func(tx *stm.Tx) {
		bt.Insert(tx, 0, 10)
		bt.Insert(tx, maxK, 20)
		bt.Insert(tx, 1, 11)
	})
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		if v, ok := bt.Lookup(tx, 0); !ok || v != 10 {
			t.Fatalf("Lookup(0) = (%d,%v)", v, ok)
		}
		if v, ok := bt.Lookup(tx, maxK); !ok || v != 20 {
			t.Fatalf("Lookup(max) = (%d,%v)", v, ok)
		}
		keys := bt.Keys(tx)
		if len(keys) != 3 || keys[0] != 0 || keys[2] != maxK {
			t.Fatalf("keys = %v", keys)
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if _, ok := bt.Remove(tx, 0); !ok {
			t.Fatal("Remove(0) failed")
		}
		if bt.Contains(tx, 0) {
			t.Fatal("0 still present")
		}
	})
}
