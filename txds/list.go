package txds

import "repro/stm"

// List is a sorted singly-linked list with set semantics (one node per
// key). It is the canonical high-constant-cost structure of the intset
// benchmarks: lookups walk O(n) nodes transactionally, which makes long
// read sets and, under updates, high validation pressure.
type List struct {
	head     stm.Addr // one-word cell holding the first node address
	nodeSite stm.SiteID
}

const listNodeWords = 3 // key, val, next

// NewList creates an empty list. Sites are registered as "<name>.head"
// and "<name>.node".
func NewList(tx *stm.Tx, rt *stm.Runtime, name string) *List {
	headSite := rt.RegisterSite(name + ".head")
	nodeSite := rt.RegisterSite(name + ".node")
	head := tx.Alloc(headSite, 1)
	tx.Store(head, uint64(stm.Nil))
	return &List{head: head, nodeSite: nodeSite}
}

// locate returns (pred, curr) where curr is the first node with key >=
// k; pred is the address of the pointer cell leading to curr (the head
// cell or a node's next field).
func (l *List) locate(tx *stm.Tx, k uint64) (ptrCell, curr stm.Addr) {
	ptrCell = l.head
	curr = tx.LoadAddr(ptrCell)
	for curr != stm.Nil {
		if tx.Load(curr+offKey) >= k {
			return ptrCell, curr
		}
		ptrCell = curr + offNext
		curr = tx.LoadAddr(ptrCell)
	}
	return ptrCell, stm.Nil
}

// Lookup returns the value stored under k.
func (l *List) Lookup(tx *stm.Tx, k uint64) (uint64, bool) {
	_, curr := l.locate(tx, k)
	if curr == stm.Nil || tx.Load(curr+offKey) != k {
		return 0, false
	}
	return tx.Load(curr + offVal), true
}

// Contains reports whether k is in the set.
func (l *List) Contains(tx *stm.Tx, k uint64) bool {
	_, ok := l.Lookup(tx, k)
	return ok
}

// Insert adds k→v if absent; it reports whether the key was inserted.
func (l *List) Insert(tx *stm.Tx, k, v uint64) bool {
	ptrCell, curr := l.locate(tx, k)
	if curr != stm.Nil && tx.Load(curr+offKey) == k {
		return false
	}
	n := tx.Alloc(l.nodeSite, listNodeWords)
	tx.Store(n+offKey, k)
	tx.Store(n+offVal, v)
	tx.StoreAddr(n+offNext, curr)
	tx.StoreAddr(ptrCell, n)
	return true
}

// Set stores k→v, inserting or overwriting; it reports whether the key
// was newly inserted.
func (l *List) Set(tx *stm.Tx, k, v uint64) bool {
	ptrCell, curr := l.locate(tx, k)
	if curr != stm.Nil && tx.Load(curr+offKey) == k {
		tx.Store(curr+offVal, v)
		return false
	}
	n := tx.Alloc(l.nodeSite, listNodeWords)
	tx.Store(n+offKey, k)
	tx.Store(n+offVal, v)
	tx.StoreAddr(n+offNext, curr)
	tx.StoreAddr(ptrCell, n)
	return true
}

// Remove deletes k, returning its value.
func (l *List) Remove(tx *stm.Tx, k uint64) (uint64, bool) {
	ptrCell, curr := l.locate(tx, k)
	if curr == stm.Nil || tx.Load(curr+offKey) != k {
		return 0, false
	}
	v := tx.Load(curr + offVal)
	tx.StoreAddr(ptrCell, tx.LoadAddr(curr+offNext))
	tx.Free(curr, listNodeWords)
	return v, true
}

// Len counts the elements (O(n) walk).
func (l *List) Len(tx *stm.Tx) int {
	n := 0
	for curr := tx.LoadAddr(l.head); curr != stm.Nil; curr = tx.LoadAddr(curr + offNext) {
		n++
	}
	return n
}

// Keys returns the keys in ascending order (test/report helper).
func (l *List) Keys(tx *stm.Tx) []uint64 {
	var out []uint64
	for curr := tx.LoadAddr(l.head); curr != stm.Nil; curr = tx.LoadAddr(curr + offNext) {
		out = append(out, tx.Load(curr+offKey))
	}
	return out
}

// Head returns the head cell address (used by partition reports).
func (l *List) Head() stm.Addr { return l.head }
