package txds

import "repro/stm"

// List is a sorted singly-linked list with set semantics (one node per
// key). It is the canonical high-constant-cost structure of the intset
// benchmarks: lookups walk O(n) nodes transactionally, which makes long
// read sets and, under updates, high validation pressure.
//
// Nodes are typed objects (stm.Ref[listNode]): a walk loads each node
// with one multi-word read — one footprint touch per node instead of one
// per field — and an insert publishes the node with one multi-word write,
// so snapshot readers can reconstruct it from the version store with a
// single index probe.
type List struct {
	head     stm.Addr // one-word cell holding the first node address
	nodeSite stm.SiteID
}

// listNode is the heap layout of one node. Field order mirrors the
// package's word offsets (offKey, offVal, offNext).
type listNode struct {
	Key, Val uint64
	Next     stm.Addr
}

const listNodeWords = 3 // key, val, next

// NewList creates an empty list. Sites are registered as "<name>.head"
// and "<name>.node".
func NewList(tx *stm.Tx, rt *stm.Runtime, name string) *List {
	headSite := rt.RegisterSite(name + ".head")
	nodeSite := rt.RegisterSite(name + ".node")
	head := tx.Alloc(headSite, 1)
	tx.Store(head, uint64(stm.Nil))
	return &List{head: head, nodeSite: nodeSite}
}

// locate returns (ptrCell, curr, node) where curr is the first node with
// key >= k (node holds its loaded contents); ptrCell is the address of
// the pointer cell leading to curr (the head cell or a node's next
// field).
func (l *List) locate(tx *stm.Tx, k uint64) (ptrCell, curr stm.Addr, node listNode) {
	ptrCell = l.head
	curr = tx.LoadAddr(ptrCell)
	for curr != stm.Nil {
		node = stm.RefAt[listNode](curr).Load(tx)
		if node.Key >= k {
			return ptrCell, curr, node
		}
		ptrCell = curr + offNext
		curr = node.Next
	}
	return ptrCell, stm.Nil, listNode{}
}

// Lookup returns the value stored under k.
func (l *List) Lookup(tx *stm.Tx, k uint64) (uint64, bool) {
	_, curr, node := l.locate(tx, k)
	if curr == stm.Nil || node.Key != k {
		return 0, false
	}
	return node.Val, true
}

// Contains reports whether k is in the set.
func (l *List) Contains(tx *stm.Tx, k uint64) bool {
	_, ok := l.Lookup(tx, k)
	return ok
}

// insertNode publishes a fresh node carrying k→v before curr, linked from
// ptrCell. The link stores go through StoreAddr so profiling runs see the
// head→node and node→node edges.
func (l *List) insertNode(tx *stm.Tx, ptrCell, curr stm.Addr, k, v uint64) {
	n := stm.AllocRef[listNode](tx, l.nodeSite)
	n.Store(tx, listNode{Key: k, Val: v, Next: curr})
	tx.StoreAddr(n.WordAddr(offNext), curr)
	tx.StoreAddr(ptrCell, n.Addr())
}

// Insert adds k→v if absent; it reports whether the key was inserted.
func (l *List) Insert(tx *stm.Tx, k, v uint64) bool {
	ptrCell, curr, node := l.locate(tx, k)
	if curr != stm.Nil && node.Key == k {
		return false
	}
	l.insertNode(tx, ptrCell, curr, k, v)
	return true
}

// Set stores k→v, inserting or overwriting; it reports whether the key
// was newly inserted.
func (l *List) Set(tx *stm.Tx, k, v uint64) bool {
	ptrCell, curr, node := l.locate(tx, k)
	if curr != stm.Nil && node.Key == k {
		tx.Store(curr+offVal, v)
		return false
	}
	l.insertNode(tx, ptrCell, curr, k, v)
	return true
}

// Remove deletes k, returning its value.
func (l *List) Remove(tx *stm.Tx, k uint64) (uint64, bool) {
	ptrCell, curr, node := l.locate(tx, k)
	if curr == stm.Nil || node.Key != k {
		return 0, false
	}
	tx.StoreAddr(ptrCell, node.Next)
	stm.RefAt[listNode](curr).Free(tx)
	return node.Val, true
}

// Len counts the elements (O(n) walk).
func (l *List) Len(tx *stm.Tx) int {
	n := 0
	for curr := tx.LoadAddr(l.head); curr != stm.Nil; curr = tx.LoadAddr(curr + offNext) {
		n++
	}
	return n
}

// Keys returns the keys in ascending order (test/report helper).
func (l *List) Keys(tx *stm.Tx) []uint64 {
	var out []uint64
	for curr := tx.LoadAddr(l.head); curr != stm.Nil; {
		node := stm.RefAt[listNode](curr).Load(tx)
		out = append(out, node.Key)
		curr = node.Next
	}
	return out
}

// Head returns the head cell address (used by partition reports).
func (l *List) Head() stm.Addr { return l.head }
