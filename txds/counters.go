package txds

import "repro/stm"

// CounterArray is a dense array of transactional counters (the bank
// benchmark's accounts). Adjacent counters share cache lines and — under
// coarse conflict-detection granularity — orecs, so it doubles as the
// granularity experiment's workload.
type CounterArray struct {
	base stm.Addr
	n    int
}

// NewCounterArray allocates n counters initialized to init at site
// "<name>.slots".
func NewCounterArray(tx *stm.Tx, rt *stm.Runtime, name string, n int, init uint64) *CounterArray {
	site := rt.RegisterSite(name + ".slots")
	base := tx.Alloc(site, n)
	for i := 0; i < n; i++ {
		tx.Store(base+stm.Addr(i), init)
	}
	return &CounterArray{base: base, n: n}
}

// N returns the number of counters.
func (c *CounterArray) N() int { return c.n }

// Addr returns the heap address of counter i, for callers that mix the
// array with raw Tx.Load/Store access.
func (c *CounterArray) Addr(i int) stm.Addr { return c.base + stm.Addr(i) }

// Ref returns a typed handle to counter i (the object view of one slot).
func (c *CounterArray) Ref(i int) stm.Ref[uint64] {
	return stm.RefAt[uint64](c.base + stm.Addr(i))
}

// Get returns counter i.
func (c *CounterArray) Get(tx *stm.Tx, i int) uint64 {
	return tx.Load(c.base + stm.Addr(i))
}

// Set stores v into counter i.
func (c *CounterArray) Set(tx *stm.Tx, i int, v uint64) {
	tx.Store(c.base+stm.Addr(i), v)
}

// Add adds delta to counter i and returns the new value.
func (c *CounterArray) Add(tx *stm.Tx, i int, delta uint64) uint64 {
	v := tx.Load(c.base+stm.Addr(i)) + delta
	tx.Store(c.base+stm.Addr(i), v)
	return v
}

// Transfer moves amount from counter i to counter j; it reports false
// (and changes nothing) when counter i is too small.
func (c *CounterArray) Transfer(tx *stm.Tx, i, j int, amount uint64) bool {
	v := tx.Load(c.base + stm.Addr(i))
	if v < amount {
		return false
	}
	tx.Store(c.base+stm.Addr(i), v-amount)
	tx.Store(c.base+stm.Addr(j), tx.Load(c.base+stm.Addr(j))+amount)
	return true
}

// Sum returns the total across all counters (a long read-only scan). It
// streams through the multi-word range primitive, so the per-access
// bookkeeping is paid once per chunk rather than once per counter.
func (c *CounterArray) Sum(tx *stm.Tx) uint64 {
	var s uint64
	tx.LoadRange(c.base, c.n, func(_ int, v uint64) bool {
		s += v
		return true
	})
	return s
}
