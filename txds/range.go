package txds

import "repro/stm"

// Range visitors: every ordered structure can enumerate the keys in
// [lo, hi] in ascending order, stopping early when the visitor returns
// false. Range scans are the canonical long-read-set transaction shape —
// under invisible reads a scan validates against every concurrent commit
// in the range, making these methods the natural probes for the
// visible/invisible trade-off on real access patterns.

// Range visits k→v pairs of the list with lo ≤ k ≤ hi in ascending order.
func (l *List) Range(tx *stm.Tx, lo, hi uint64, visit func(k, v uint64) bool) {
	x := tx.LoadAddr(l.head)
	for x != stm.Nil {
		k := tx.Load(x + offKey)
		if k > hi {
			return
		}
		if k >= lo && !visit(k, tx.Load(x+offVal)) {
			return
		}
		x = tx.LoadAddr(x + offNext)
	}
}

// Range visits k→v pairs of the skip list with lo ≤ k ≤ hi ascending,
// using the towers to skip straight to lo.
func (s *SkipList) Range(tx *stm.Tx, lo, hi uint64, visit func(k, v uint64) bool) {
	x := s.head
	for i := SkipListMaxLevel - 1; i >= 0; i-- {
		for {
			nxt := tx.LoadAddr(s.nextCell(x, i))
			if nxt == stm.Nil || tx.Load(nxt+offKey) >= lo {
				break
			}
			x = nxt
		}
	}
	for x = tx.LoadAddr(s.nextCell(x, 0)); x != stm.Nil; x = tx.LoadAddr(x + slNextBase) {
		k := tx.Load(x + offKey)
		if k > hi {
			return
		}
		if !visit(k, tx.Load(x+offVal)) {
			return
		}
	}
}

// Range visits k→v pairs of the tree with lo ≤ k ≤ hi in ascending order.
func (t *RBTree) Range(tx *stm.Tx, lo, hi uint64, visit func(k, v uint64) bool) {
	t.rangeRec(tx, t.root(tx), lo, hi, visit)
}

func (t *RBTree) rangeRec(tx *stm.Tx, n stm.Addr, lo, hi uint64, visit func(k, v uint64) bool) bool {
	if n == t.nilNode {
		return true
	}
	k := tx.Load(n + offKey)
	if k > lo {
		if !t.rangeRec(tx, tx.LoadAddr(n+rbLeft), lo, hi, visit) {
			return false
		}
	}
	if k >= lo && k <= hi {
		if !visit(k, tx.Load(n+offVal)) {
			return false
		}
	}
	if k < hi {
		return t.rangeRec(tx, tx.LoadAddr(n+rbRight), lo, hi, visit)
	}
	return true
}

// Range visits k→v pairs of the B-tree with lo ≤ k ≤ hi in ascending
// order. Wide nodes make B-tree range scans read far fewer orecs than
// the binary trees for the same span.
func (t *BTree) Range(tx *stm.Tx, lo, hi uint64, visit func(k, v uint64) bool) {
	t.rangeRec(tx, tx.LoadAddr(t.rootCell), lo, hi, visit)
}

func (t *BTree) rangeRec(tx *stm.Tx, a stm.Addr, lo, hi uint64, visit func(k, v uint64) bool) bool {
	n := btLoad(tx, a)
	cnt := int(n.N)
	leaf := n.Leaf == 1
	for i := 0; i < cnt; i++ {
		k := n.Keys[i]
		if !leaf && k > lo {
			if !t.rangeRec(tx, n.Kids[i], lo, hi, visit) {
				return false
			}
		}
		if k > hi {
			return false
		}
		if k >= lo {
			if !visit(k, n.Vals[i]) {
				return false
			}
		}
	}
	if !leaf && cnt > 0 {
		if n.Keys[cnt-1] < hi {
			return t.rangeRec(tx, n.Kids[cnt], lo, hi, visit)
		}
	}
	return true
}
