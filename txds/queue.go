package txds

import "repro/stm"

// Queue is a FIFO queue (head/tail cells plus a singly-linked chain).
// Queues concentrate every operation on two words, making them the
// maximal-contention structure — the natural candidate for visible reads
// or coarse conflict detection.
type Queue struct {
	meta     stm.Addr // [0]=head, [1]=tail
	nodeSite stm.SiteID
}

const (
	qHead = 0
	qTail = 1

	qVal       = 0
	qNext      = 1
	qNodeWords = 2
)

// NewQueue creates an empty queue with sites "<name>.meta" and
// "<name>.node".
func NewQueue(tx *stm.Tx, rt *stm.Runtime, name string) *Queue {
	mSite := rt.RegisterSite(name + ".meta")
	nSite := rt.RegisterSite(name + ".node")
	meta := tx.Alloc(mSite, 2)
	tx.Store(meta+qHead, uint64(stm.Nil))
	tx.Store(meta+qTail, uint64(stm.Nil))
	return &Queue{meta: meta, nodeSite: nSite}
}

// Enqueue appends v.
func (q *Queue) Enqueue(tx *stm.Tx, v uint64) {
	n := tx.Alloc(q.nodeSite, qNodeWords)
	tx.Store(n+qVal, v)
	tx.StoreAddr(n+qNext, stm.Nil)
	tail := tx.LoadAddr(q.meta + qTail)
	if tail == stm.Nil {
		tx.StoreAddr(q.meta+qHead, n)
	} else {
		tx.StoreAddr(tail+qNext, n)
	}
	tx.StoreAddr(q.meta+qTail, n)
}

// Dequeue removes and returns the oldest element.
func (q *Queue) Dequeue(tx *stm.Tx) (uint64, bool) {
	head := tx.LoadAddr(q.meta + qHead)
	if head == stm.Nil {
		return 0, false
	}
	v := tx.Load(head + qVal)
	next := tx.LoadAddr(head + qNext)
	tx.StoreAddr(q.meta+qHead, next)
	if next == stm.Nil {
		tx.StoreAddr(q.meta+qTail, stm.Nil)
	}
	tx.Free(head, qNodeWords)
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *Queue) Peek(tx *stm.Tx) (uint64, bool) {
	head := tx.LoadAddr(q.meta + qHead)
	if head == stm.Nil {
		return 0, false
	}
	return tx.Load(head + qVal), true
}

// Len counts queued elements.
func (q *Queue) Len(tx *stm.Tx) int {
	n := 0
	for x := tx.LoadAddr(q.meta + qHead); x != stm.Nil; x = tx.LoadAddr(x + qNext) {
		n++
	}
	return n
}
