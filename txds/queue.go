package txds

import "repro/stm"

// Queue is a FIFO queue (head/tail cells plus a singly-linked chain).
// Queues concentrate every operation on two words, making them the
// maximal-contention structure — the natural candidate for visible reads
// or coarse conflict detection.
//
// Nodes are typed objects (stm.Ref): an operation loads each node with
// one multi-word read instead of one word at a time. The meta cell stays
// word-granular on the operation paths on purpose: Enqueue touches only
// the tail word and Dequeue the head (plus the tail only when the queue
// empties), so producers and consumers of a non-empty queue do not
// read-write conflict through words they never needed — folding the pair
// into one object read would serialize them.
type Queue struct {
	meta     stm.Ref[queueMeta]
	nodeSite stm.SiteID
}

// queueMeta is the heap layout of the queue's anchor cell.
type queueMeta struct {
	Head, Tail stm.Addr
}

// queueNode is the heap layout of one queue node. Field order mirrors
// the word offsets below.
type queueNode struct {
	Val  uint64
	Next stm.Addr
}

const (
	qHead = 0
	qTail = 1

	qVal       = 0
	qNext      = 1
	qNodeWords = 2
)

// NewQueue creates an empty queue with sites "<name>.meta" and
// "<name>.node".
func NewQueue(tx *stm.Tx, rt *stm.Runtime, name string) *Queue {
	mSite := rt.RegisterSite(name + ".meta")
	nSite := rt.RegisterSite(name + ".node")
	meta := stm.AllocRef[queueMeta](tx, mSite)
	meta.Store(tx, queueMeta{Head: stm.Nil, Tail: stm.Nil})
	return &Queue{meta: meta, nodeSite: nSite}
}

// Enqueue appends v.
func (q *Queue) Enqueue(tx *stm.Tx, v uint64) {
	n := stm.AllocRef[queueNode](tx, q.nodeSite)
	n.Store(tx, queueNode{Val: v, Next: stm.Nil})
	tail := tx.LoadAddr(q.meta.WordAddr(qTail))
	if tail == stm.Nil {
		tx.StoreAddr(q.meta.WordAddr(qHead), n.Addr())
	} else {
		tx.StoreAddr(tail+qNext, n.Addr())
	}
	tx.StoreAddr(q.meta.WordAddr(qTail), n.Addr())
}

// Dequeue removes and returns the oldest element.
func (q *Queue) Dequeue(tx *stm.Tx) (uint64, bool) {
	headAddr := tx.LoadAddr(q.meta.WordAddr(qHead))
	if headAddr == stm.Nil {
		return 0, false
	}
	head := stm.RefAt[queueNode](headAddr)
	node := head.Load(tx)
	tx.StoreAddr(q.meta.WordAddr(qHead), node.Next)
	if node.Next == stm.Nil {
		tx.StoreAddr(q.meta.WordAddr(qTail), stm.Nil)
	}
	head.Free(tx)
	return node.Val, true
}

// Peek returns the oldest element without removing it.
func (q *Queue) Peek(tx *stm.Tx) (uint64, bool) {
	head := tx.LoadAddr(q.meta.WordAddr(qHead))
	if head == stm.Nil {
		return 0, false
	}
	return tx.Load(head + qVal), true
}

// Len counts queued elements.
func (q *Queue) Len(tx *stm.Tx) int {
	n := 0
	for x := tx.LoadAddr(q.meta.WordAddr(qHead)); x != stm.Nil; {
		n++
		x = stm.RefAt[queueNode](x).Load(tx).Next
	}
	return n
}
