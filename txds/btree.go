package txds

import (
	"unsafe"

	"repro/stm"
)

// BTree is a transactional B-tree of minimum degree BTreeDegree (CLRS
// formulation: every node except the root holds between t-1 and 2t-1
// keys). Against the red/black tree it trades pointer chases for wide
// nodes: a lookup touches ~log_t(n) nodes instead of ~log2(n), so its
// read sets are much smaller — but every split/merge rewrites whole
// nodes, so its write sets are larger. That asymmetry gives it a
// different per-partition profile than RBTree on the same key stream,
// which is precisely the heterogeneity the partitioned STM exploits.
//
// Nodes are typed objects (stm.Ref[btNode]): each visited node is read
// with one multi-word load and each mutated node published with one
// multi-word store, so a node costs one footprint touch — and one
// read-set entry per ownership record — instead of one per word, and a
// whole-node store lands in the snapshot history as one contiguous group
// that snapshot readers reconstruct with a single index probe. Nodes
// unlinked by merges (and the shrunk empty root) are freed through the
// commit-time retire path, so their memory recycles once the reclamation
// horizon passes the deleting commit.
type BTree struct {
	rootCell stm.Addr // one word: pointer to the root node
	nodeSite stm.SiteID
}

// BTreeDegree is the minimum degree t: nodes hold t-1..2t-1 keys.
const BTreeDegree = 4

const (
	btMaxKeys = 2*BTreeDegree - 1
	btMinKeys = BTreeDegree - 1

	// Node layout (words), mirrored by btNode's field order:
	//   [0]            leaf flag (1 = leaf)
	//   [1]            key count n
	//   [2 .. 2+M)     keys[0..n)
	//   [2+M .. 2+2M)  values[0..n)
	//   [2+2M .. 3+3M) children[0..n] (internal nodes only)
	btLeaf     = 0
	btN        = 1
	btKeys     = 2
	btVals     = btKeys + btMaxKeys
	btKids     = btVals + btMaxKeys
	btNodeSize = btKids + btMaxKeys + 1
)

// btNode is the heap layout of one node. Field order mirrors the word
// offsets above; the consts remain the coin for WordAddr arithmetic on
// profiled link stores.
type btNode struct {
	Leaf uint64
	N    uint64
	Keys [btMaxKeys]uint64
	Vals [btMaxKeys]uint64
	Kids [btMaxKeys + 1]stm.Addr
}

// Both subtractions underflow (a compile error) unless the struct is
// exactly btNodeSize words.
const (
	_ = btNodeSize*8 - unsafe.Sizeof(btNode{})
	_ = unsafe.Sizeof(btNode{}) - btNodeSize*8
)

func btLoad(tx *stm.Tx, a stm.Addr) btNode      { return stm.RefAt[btNode](a).Load(tx) }
func btStore(tx *stm.Tx, a stm.Addr, n *btNode) { stm.RefAt[btNode](a).Store(tx, *n) }
func btKidAddr(a stm.Addr, i int) stm.Addr      { return stm.RefAt[btNode](a).WordAddr(btKids + i) }

// find returns the first key index i with k <= Keys[i] (or N).
func (n *btNode) find(k uint64) int {
	i := 0
	for i < int(n.N) && k > n.Keys[i] {
		i++
	}
	return i
}

// NewBTree creates an empty tree with sites "<name>.root" and
// "<name>.node".
func NewBTree(tx *stm.Tx, rt *stm.Runtime, name string) *BTree {
	rootSite := rt.RegisterSite(name + ".root")
	nodeSite := rt.RegisterSite(name + ".node")
	rootCell := tx.Alloc(rootSite, 1)
	t := &BTree{rootCell: rootCell, nodeSite: nodeSite}
	root := t.newNode(tx, true)
	tx.StoreAddr(rootCell, root.Addr())
	return t
}

func (t *BTree) newNode(tx *stm.Tx, leaf bool) stm.Ref[btNode] {
	r := stm.AllocRef[btNode](tx, t.nodeSite)
	var n btNode
	if leaf {
		n.Leaf = 1
	}
	r.Store(tx, n)
	return r
}

// Lookup returns the value stored under k.
func (t *BTree) Lookup(tx *stm.Tx, k uint64) (uint64, bool) {
	a := tx.LoadAddr(t.rootCell)
	for {
		n := btLoad(tx, a)
		i := n.find(k)
		if i < int(n.N) && n.Keys[i] == k {
			return n.Vals[i], true
		}
		if n.Leaf == 1 {
			return 0, false
		}
		a = n.Kids[i]
	}
}

// Contains reports membership.
func (t *BTree) Contains(tx *stm.Tx, k uint64) bool {
	_, ok := t.Lookup(tx, k)
	return ok
}

// splitChild splits parent's full child at index i (single-pass insert
// invariant: the parent is known non-full).
func (t *BTree) splitChild(tx *stm.Tx, parentA stm.Addr, i int) {
	p := btLoad(tx, parentA)
	childA := p.Kids[i]
	c := btLoad(tx, childA)
	// Build the new right node locally, then publish it with one store.
	rightRef := stm.AllocRef[btNode](tx, t.nodeSite)
	var r btNode
	r.Leaf = c.Leaf
	r.N = btMinKeys
	copy(r.Keys[:btMinKeys], c.Keys[BTreeDegree:])
	copy(r.Vals[:btMinKeys], c.Vals[BTreeDegree:])
	if c.Leaf == 0 {
		copy(r.Kids[:BTreeDegree], c.Kids[BTreeDegree:2*BTreeDegree])
	}
	midK, midV := c.Keys[btMinKeys], c.Vals[btMinKeys]
	c.N = btMinKeys
	// Shift the parent's keys/children right of i and hoist the median.
	pc := int(p.N)
	for j := pc; j > i; j-- {
		p.Keys[j], p.Vals[j] = p.Keys[j-1], p.Vals[j-1]
	}
	for j := pc + 1; j > i+1; j-- {
		p.Kids[j] = p.Kids[j-1]
	}
	p.Keys[i], p.Vals[i] = midK, midV
	p.Kids[i+1] = rightRef.Addr()
	p.N = uint64(pc + 1)
	rightRef.Store(tx, r)
	btStore(tx, childA, &c)
	btStore(tx, parentA, &p)
	// Re-store the new parent→right link through StoreAddr so profiling
	// runs see the edge.
	tx.StoreAddr(btKidAddr(parentA, i+1), rightRef.Addr())
}

// Insert adds k→v if absent; reports whether it inserted.
func (t *BTree) Insert(tx *stm.Tx, k, v uint64) bool {
	if t.Contains(tx, k) {
		return false
	}
	rootA := tx.LoadAddr(t.rootCell)
	if btLoad(tx, rootA).N == btMaxKeys {
		nrRef := stm.AllocRef[btNode](tx, t.nodeSite)
		var nr btNode
		nr.Kids[0] = rootA
		nrRef.Store(tx, nr)
		tx.StoreAddr(btKidAddr(nrRef.Addr(), 0), rootA)
		tx.StoreAddr(t.rootCell, nrRef.Addr())
		t.splitChild(tx, nrRef.Addr(), 0)
		rootA = nrRef.Addr()
	}
	t.insertNonFull(tx, rootA, k, v)
	return true
}

// Set upserts k→v; reports whether the key was newly inserted.
func (t *BTree) Set(tx *stm.Tx, k, v uint64) bool {
	if t.update(tx, k, v) {
		return false
	}
	return t.Insert(tx, k, v)
}

// update overwrites an existing key in place.
func (t *BTree) update(tx *stm.Tx, k, v uint64) bool {
	a := tx.LoadAddr(t.rootCell)
	for {
		n := btLoad(tx, a)
		i := n.find(k)
		if i < int(n.N) && n.Keys[i] == k {
			n.Vals[i] = v
			btStore(tx, a, &n)
			return true
		}
		if n.Leaf == 1 {
			return false
		}
		a = n.Kids[i]
	}
}

func (t *BTree) insertNonFull(tx *stm.Tx, a stm.Addr, k, v uint64) {
	for {
		n := btLoad(tx, a)
		cnt := int(n.N)
		if n.Leaf == 1 {
			i := cnt
			for i > 0 && k < n.Keys[i-1] {
				n.Keys[i], n.Vals[i] = n.Keys[i-1], n.Vals[i-1]
				i--
			}
			n.Keys[i], n.Vals[i] = k, v
			n.N = uint64(cnt + 1)
			btStore(tx, a, &n)
			return
		}
		i := cnt
		for i > 0 && k < n.Keys[i-1] {
			i--
		}
		if btLoad(tx, n.Kids[i]).N == btMaxKeys {
			t.splitChild(tx, a, i)
			n = btLoad(tx, a) // the split rewrote this node
			if k > n.Keys[i] {
				i++
			}
		}
		a = n.Kids[i]
	}
}

// Remove deletes k, returning its value. Implements the classic CLRS
// deletion: every node visited on the way down is first fattened to at
// least t keys (borrow from a sibling or merge), so deletion never
// backtracks.
func (t *BTree) Remove(tx *stm.Tx, k uint64) (uint64, bool) {
	v, ok := t.Lookup(tx, k)
	if !ok {
		return 0, false
	}
	rootA := tx.LoadAddr(t.rootCell)
	t.remove(tx, rootA, k)
	// Shrink an empty internal root, retiring the old node.
	if root := btLoad(tx, rootA); root.N == 0 && root.Leaf == 0 {
		tx.StoreAddr(t.rootCell, root.Kids[0])
		stm.RefAt[btNode](rootA).Free(tx)
	}
	return v, true
}

func (t *BTree) remove(tx *stm.Tx, a stm.Addr, k uint64) {
	n := btLoad(tx, a)
	cnt := int(n.N)
	i := n.find(k)
	if n.Leaf == 1 {
		if i < cnt && n.Keys[i] == k {
			copy(n.Keys[i:cnt-1], n.Keys[i+1:cnt])
			copy(n.Vals[i:cnt-1], n.Vals[i+1:cnt])
			n.N = uint64(cnt - 1)
			btStore(tx, a, &n)
		}
		return
	}
	if i < cnt && n.Keys[i] == k {
		t.removeFromInternal(tx, a, i, k)
		return
	}
	// Descend into child i, fattening it first if minimal.
	childA := n.Kids[i]
	if btLoad(tx, childA).N == btMinKeys {
		i = t.fatten(tx, a, i)
		// Fattening may have merged the target key into a different child.
		n = btLoad(tx, a)
		cnt = int(n.N)
		for i < cnt && k > n.Keys[i] {
			i++
		}
		if i < cnt && n.Keys[i] == k {
			t.removeFromInternal(tx, a, i, k)
			return
		}
		childA = n.Kids[i]
	}
	t.remove(tx, childA, k)
}

// removeFromInternal deletes key index i of internal node n (CLRS cases
// 2a/2b/2c).
func (t *BTree) removeFromInternal(tx *stm.Tx, a stm.Addr, i int, k uint64) {
	n := btLoad(tx, a)
	left, right := n.Kids[i], n.Kids[i+1]
	switch {
	case btLoad(tx, left).N > btMinKeys:
		// Replace with predecessor, then delete the predecessor below.
		pk, pv := t.maxKV(tx, left)
		n.Keys[i], n.Vals[i] = pk, pv
		btStore(tx, a, &n)
		t.remove(tx, left, pk)
	case btLoad(tx, right).N > btMinKeys:
		sk, sv := t.minKV(tx, right)
		n.Keys[i], n.Vals[i] = sk, sv
		btStore(tx, a, &n)
		t.remove(tx, right, sk)
	default:
		t.mergeChildren(tx, a, i)
		t.remove(tx, left, k)
	}
}

func (t *BTree) maxKV(tx *stm.Tx, a stm.Addr) (uint64, uint64) {
	for {
		n := btLoad(tx, a)
		if n.Leaf == 1 {
			return n.Keys[n.N-1], n.Vals[n.N-1]
		}
		a = n.Kids[n.N]
	}
}

func (t *BTree) minKV(tx *stm.Tx, a stm.Addr) (uint64, uint64) {
	for {
		n := btLoad(tx, a)
		if n.Leaf == 1 {
			return n.Keys[0], n.Vals[0]
		}
		a = n.Kids[0]
	}
}

// fatten guarantees child i of n has more than btMinKeys keys, borrowing
// from a sibling or merging; it returns the (possibly shifted) child
// index to descend into.
func (t *BTree) fatten(tx *stm.Tx, a stm.Addr, i int) int {
	n := btLoad(tx, a)
	cnt := int(n.N)
	childA := n.Kids[i]
	if i > 0 {
		leftA := n.Kids[i-1]
		if l := btLoad(tx, leftA); int(l.N) > btMinKeys {
			// Borrow from the left sibling through the separator.
			c := btLoad(tx, childA)
			lc, cc := int(l.N), int(c.N)
			for j := cc; j > 0; j-- {
				c.Keys[j], c.Vals[j] = c.Keys[j-1], c.Vals[j-1]
			}
			if c.Leaf == 0 {
				for j := cc + 1; j > 0; j-- {
					c.Kids[j] = c.Kids[j-1]
				}
				c.Kids[0] = l.Kids[lc]
			}
			c.Keys[0], c.Vals[0] = n.Keys[i-1], n.Vals[i-1]
			c.N = uint64(cc + 1)
			n.Keys[i-1], n.Vals[i-1] = l.Keys[lc-1], l.Vals[lc-1]
			l.N = uint64(lc - 1)
			btStore(tx, childA, &c)
			btStore(tx, leftA, &l)
			btStore(tx, a, &n)
			if c.Leaf == 0 {
				tx.StoreAddr(btKidAddr(childA, 0), c.Kids[0])
			}
			return i
		}
	}
	if i < cnt {
		rightA := n.Kids[i+1]
		if r := btLoad(tx, rightA); int(r.N) > btMinKeys {
			// Borrow from the right sibling.
			c := btLoad(tx, childA)
			rc, cc := int(r.N), int(c.N)
			c.Keys[cc], c.Vals[cc] = n.Keys[i], n.Vals[i]
			if c.Leaf == 0 {
				c.Kids[cc+1] = r.Kids[0]
			}
			c.N = uint64(cc + 1)
			n.Keys[i], n.Vals[i] = r.Keys[0], r.Vals[0]
			copy(r.Keys[:rc-1], r.Keys[1:rc])
			copy(r.Vals[:rc-1], r.Vals[1:rc])
			if r.Leaf == 0 {
				copy(r.Kids[:rc], r.Kids[1:rc+1])
			}
			r.N = uint64(rc - 1)
			btStore(tx, childA, &c)
			btStore(tx, rightA, &r)
			btStore(tx, a, &n)
			if c.Leaf == 0 {
				tx.StoreAddr(btKidAddr(childA, cc+1), c.Kids[cc+1])
			}
			return i
		}
	}
	// Merge with a sibling.
	if i == cnt {
		i--
	}
	t.mergeChildren(tx, a, i)
	return i
}

// mergeChildren merges child i+1 and separator i into child i and frees
// the right node through the commit-time retire path.
func (t *BTree) mergeChildren(tx *stm.Tx, a stm.Addr, i int) {
	n := btLoad(tx, a)
	leftA, rightA := n.Kids[i], n.Kids[i+1]
	l := btLoad(tx, leftA)
	r := btLoad(tx, rightA)
	lc, rc := int(l.N), int(r.N)
	l.Keys[lc], l.Vals[lc] = n.Keys[i], n.Vals[i]
	copy(l.Keys[lc+1:lc+1+rc], r.Keys[:rc])
	copy(l.Vals[lc+1:lc+1+rc], r.Vals[:rc])
	if l.Leaf == 0 {
		copy(l.Kids[lc+1:lc+2+rc], r.Kids[:rc+1])
	}
	l.N = uint64(lc + 1 + rc)
	// Close the gap in the parent.
	pc := int(n.N)
	copy(n.Keys[i:pc-1], n.Keys[i+1:pc])
	copy(n.Vals[i:pc-1], n.Vals[i+1:pc])
	copy(n.Kids[i+1:pc], n.Kids[i+2:pc+1])
	n.N = uint64(pc - 1)
	btStore(tx, leftA, &l)
	btStore(tx, a, &n)
	if l.Leaf == 0 {
		// Adopted left→grandchild edges, re-stored for profiling.
		for j := 0; j <= rc; j++ {
			tx.StoreAddr(btKidAddr(leftA, lc+1+j), l.Kids[lc+1+j])
		}
	}
	stm.RefAt[btNode](rightA).Free(tx)
}

// Len counts stored keys.
func (t *BTree) Len(tx *stm.Tx) int {
	return t.lenRec(tx, tx.LoadAddr(t.rootCell))
}

func (t *BTree) lenRec(tx *stm.Tx, a stm.Addr) int {
	n := btLoad(tx, a)
	total := int(n.N)
	if n.Leaf == 0 {
		for i := 0; i <= int(n.N); i++ {
			total += t.lenRec(tx, n.Kids[i])
		}
	}
	return total
}

// Keys returns all keys ascending.
func (t *BTree) Keys(tx *stm.Tx) []uint64 {
	var out []uint64
	t.walk(tx, tx.LoadAddr(t.rootCell), func(k, _ uint64) { out = append(out, k) })
	return out
}

func (t *BTree) walk(tx *stm.Tx, a stm.Addr, f func(k, v uint64)) {
	n := btLoad(tx, a)
	cnt := int(n.N)
	for i := 0; i < cnt; i++ {
		if n.Leaf == 0 {
			t.walk(tx, n.Kids[i], f)
		}
		f(n.Keys[i], n.Vals[i])
	}
	if n.Leaf == 0 {
		t.walk(tx, n.Kids[cnt], f)
	}
}

// CheckInvariants verifies B-tree structure: key counts within [t-1,
// 2t-1] (root exempt from the minimum), sorted keys, uniform leaf depth.
// Returns "" when all hold.
func (t *BTree) CheckInvariants(tx *stm.Tx) string {
	root := tx.LoadAddr(t.rootCell)
	_, msg := t.checkRec(tx, root, true, false, 0, false, 0)
	return msg
}

func (t *BTree) checkRec(tx *stm.Tx, a stm.Addr, isRoot bool, hasLo bool, lo uint64, hasHi bool, hi uint64) (depth int, msg string) {
	n := btLoad(tx, a)
	cnt := int(n.N)
	if cnt > btMaxKeys {
		return 0, "btree: node overflow"
	}
	if !isRoot && cnt < btMinKeys {
		return 0, "btree: node underflow"
	}
	prevSet, prev := hasLo, lo
	for i := 0; i < cnt; i++ {
		k := n.Keys[i]
		if prevSet && k <= prev {
			return 0, "btree: keys not strictly ascending"
		}
		if hasHi && k >= hi {
			return 0, "btree: key exceeds upper bound"
		}
		prevSet, prev = true, k
	}
	if n.Leaf == 1 {
		return 1, ""
	}
	want := -1
	for i := 0; i <= cnt; i++ {
		cHasLo, clo := hasLo, lo
		cHasHi, chi := hasHi, hi
		if i > 0 {
			cHasLo, clo = true, n.Keys[i-1]
		}
		if i < cnt {
			cHasHi, chi = true, n.Keys[i]
		}
		d, m := t.checkRec(tx, n.Kids[i], false, cHasLo, clo, cHasHi, chi)
		if m != "" {
			return 0, m
		}
		if want == -1 {
			want = d
		} else if d != want {
			return 0, "btree: leaves at different depths"
		}
	}
	return want + 1, ""
}
