package txds

import "repro/stm"

// BTree is a transactional B-tree of minimum degree BTreeDegree (CLRS
// formulation: every node except the root holds between t-1 and 2t-1
// keys). Against the red/black tree it trades pointer chases for wide
// nodes: a lookup touches ~log_t(n) nodes instead of ~log2(n), so its
// read sets are much smaller — but every split/merge rewrites whole
// nodes, so its write sets are larger. That asymmetry gives it a
// different per-partition profile than RBTree on the same key stream,
// which is precisely the heterogeneity the partitioned STM exploits.
type BTree struct {
	rootCell stm.Addr // one word: pointer to the root node
	nodeSite stm.SiteID
}

// BTreeDegree is the minimum degree t: nodes hold t-1..2t-1 keys.
const BTreeDegree = 4

const (
	btMaxKeys = 2*BTreeDegree - 1
	btMinKeys = BTreeDegree - 1

	// Node layout (words):
	//   [0]            leaf flag (1 = leaf)
	//   [1]            key count n
	//   [2 .. 2+M)     keys[0..n)
	//   [2+M .. 2+2M)  values[0..n)
	//   [2+2M .. 3+3M) children[0..n] (internal nodes only)
	btLeaf     = 0
	btN        = 1
	btKeys     = 2
	btVals     = btKeys + btMaxKeys
	btKids     = btVals + btMaxKeys
	btNodeSize = btKids + btMaxKeys + 1
)

// NewBTree creates an empty tree with sites "<name>.root" and
// "<name>.node".
func NewBTree(tx *stm.Tx, rt *stm.Runtime, name string) *BTree {
	rootSite := rt.RegisterSite(name + ".root")
	nodeSite := rt.RegisterSite(name + ".node")
	rootCell := tx.Alloc(rootSite, 1)
	t := &BTree{rootCell: rootCell, nodeSite: nodeSite}
	root := t.newNode(tx, true)
	tx.StoreAddr(rootCell, root)
	return t
}

func (t *BTree) newNode(tx *stm.Tx, leaf bool) stm.Addr {
	n := tx.Alloc(t.nodeSite, btNodeSize)
	v := uint64(0)
	if leaf {
		v = 1
	}
	tx.Store(n+btLeaf, v)
	tx.Store(n+btN, 0)
	return n
}

func (t *BTree) isLeaf(tx *stm.Tx, n stm.Addr) bool { return tx.Load(n+btLeaf) == 1 }
func (t *BTree) count(tx *stm.Tx, n stm.Addr) int   { return int(tx.Load(n + btN)) }
func (t *BTree) setCount(tx *stm.Tx, n stm.Addr, c int) {
	tx.Store(n+btN, uint64(c))
}
func (t *BTree) key(tx *stm.Tx, n stm.Addr, i int) uint64 { return tx.Load(n + btKeys + stm.Addr(i)) }
func (t *BTree) val(tx *stm.Tx, n stm.Addr, i int) uint64 { return tx.Load(n + btVals + stm.Addr(i)) }
func (t *BTree) setKV(tx *stm.Tx, n stm.Addr, i int, k, v uint64) {
	tx.Store(n+btKeys+stm.Addr(i), k)
	tx.Store(n+btVals+stm.Addr(i), v)
}
func (t *BTree) kid(tx *stm.Tx, n stm.Addr, i int) stm.Addr {
	return tx.LoadAddr(n + btKids + stm.Addr(i))
}
func (t *BTree) setKid(tx *stm.Tx, n stm.Addr, i int, c stm.Addr) {
	tx.StoreAddr(n+btKids+stm.Addr(i), c)
}

// Lookup returns the value stored under k.
func (t *BTree) Lookup(tx *stm.Tx, k uint64) (uint64, bool) {
	n := tx.LoadAddr(t.rootCell)
	for {
		cnt := t.count(tx, n)
		i := 0
		for i < cnt && k > t.key(tx, n, i) {
			i++
		}
		if i < cnt && k == t.key(tx, n, i) {
			return t.val(tx, n, i), true
		}
		if t.isLeaf(tx, n) {
			return 0, false
		}
		n = t.kid(tx, n, i)
	}
}

// Contains reports membership.
func (t *BTree) Contains(tx *stm.Tx, k uint64) bool {
	_, ok := t.Lookup(tx, k)
	return ok
}

// splitChild splits parent's full child at index i (single-pass insert
// invariant: the parent is known non-full).
func (t *BTree) splitChild(tx *stm.Tx, parent stm.Addr, i int) {
	child := t.kid(tx, parent, i)
	right := t.newNode(tx, t.isLeaf(tx, child))
	// Move the upper t-1 keys of child into right.
	for j := 0; j < btMinKeys; j++ {
		t.setKV(tx, right, j,
			t.key(tx, child, j+BTreeDegree), t.val(tx, child, j+BTreeDegree))
	}
	if !t.isLeaf(tx, child) {
		for j := 0; j < BTreeDegree; j++ {
			t.setKid(tx, right, j, t.kid(tx, child, j+BTreeDegree))
		}
	}
	t.setCount(tx, right, btMinKeys)
	midK, midV := t.key(tx, child, btMinKeys), t.val(tx, child, btMinKeys)
	t.setCount(tx, child, btMinKeys)
	// Shift the parent's keys/children right of i and hoist the median.
	pc := t.count(tx, parent)
	for j := pc; j > i; j-- {
		t.setKV(tx, parent, j, t.key(tx, parent, j-1), t.val(tx, parent, j-1))
	}
	for j := pc + 1; j > i+1; j-- {
		t.setKid(tx, parent, j, t.kid(tx, parent, j-1))
	}
	t.setKV(tx, parent, i, midK, midV)
	t.setKid(tx, parent, i+1, right)
	t.setCount(tx, parent, pc+1)
}

// Insert adds k→v if absent; reports whether it inserted.
func (t *BTree) Insert(tx *stm.Tx, k, v uint64) bool {
	if t.Contains(tx, k) {
		return false
	}
	root := tx.LoadAddr(t.rootCell)
	if t.count(tx, root) == btMaxKeys {
		newRoot := t.newNode(tx, false)
		t.setKid(tx, newRoot, 0, root)
		tx.StoreAddr(t.rootCell, newRoot)
		t.splitChild(tx, newRoot, 0)
		root = newRoot
	}
	t.insertNonFull(tx, root, k, v)
	return true
}

// Set upserts k→v; reports whether the key was newly inserted.
func (t *BTree) Set(tx *stm.Tx, k, v uint64) bool {
	if t.update(tx, k, v) {
		return false
	}
	return t.Insert(tx, k, v)
}

// update overwrites an existing key in place.
func (t *BTree) update(tx *stm.Tx, k, v uint64) bool {
	n := tx.LoadAddr(t.rootCell)
	for {
		cnt := t.count(tx, n)
		i := 0
		for i < cnt && k > t.key(tx, n, i) {
			i++
		}
		if i < cnt && k == t.key(tx, n, i) {
			tx.Store(n+btVals+stm.Addr(i), v)
			return true
		}
		if t.isLeaf(tx, n) {
			return false
		}
		n = t.kid(tx, n, i)
	}
}

func (t *BTree) insertNonFull(tx *stm.Tx, n stm.Addr, k, v uint64) {
	for {
		cnt := t.count(tx, n)
		if t.isLeaf(tx, n) {
			i := cnt
			for i > 0 && k < t.key(tx, n, i-1) {
				t.setKV(tx, n, i, t.key(tx, n, i-1), t.val(tx, n, i-1))
				i--
			}
			t.setKV(tx, n, i, k, v)
			t.setCount(tx, n, cnt+1)
			return
		}
		i := cnt
		for i > 0 && k < t.key(tx, n, i-1) {
			i--
		}
		if t.count(tx, t.kid(tx, n, i)) == btMaxKeys {
			t.splitChild(tx, n, i)
			if k > t.key(tx, n, i) {
				i++
			}
		}
		n = t.kid(tx, n, i)
	}
}

// Remove deletes k, returning its value. Implements the classic CLRS
// deletion: every node visited on the way down is first fattened to at
// least t keys (borrow from a sibling or merge), so deletion never
// backtracks.
func (t *BTree) Remove(tx *stm.Tx, k uint64) (uint64, bool) {
	v, ok := t.Lookup(tx, k)
	if !ok {
		return 0, false
	}
	root := tx.LoadAddr(t.rootCell)
	t.remove(tx, root, k)
	// Shrink an empty internal root.
	if t.count(tx, root) == 0 && !t.isLeaf(tx, root) {
		tx.StoreAddr(t.rootCell, t.kid(tx, root, 0))
		tx.Free(root, btNodeSize)
	}
	return v, true
}

func (t *BTree) remove(tx *stm.Tx, n stm.Addr, k uint64) {
	cnt := t.count(tx, n)
	i := 0
	for i < cnt && k > t.key(tx, n, i) {
		i++
	}
	if t.isLeaf(tx, n) {
		if i < cnt && t.key(tx, n, i) == k {
			for j := i; j < cnt-1; j++ {
				t.setKV(tx, n, j, t.key(tx, n, j+1), t.val(tx, n, j+1))
			}
			t.setCount(tx, n, cnt-1)
		}
		return
	}
	if i < cnt && t.key(tx, n, i) == k {
		t.removeFromInternal(tx, n, i, k)
		return
	}
	// Descend into child i, fattening it first if minimal.
	child := t.kid(tx, n, i)
	if t.count(tx, child) == btMinKeys {
		i = t.fatten(tx, n, i)
		// Fattening may have merged the target key into a different child.
		cnt = t.count(tx, n)
		for i < cnt && k > t.key(tx, n, i) {
			i++
		}
		if i < cnt && t.key(tx, n, i) == k {
			t.removeFromInternal(tx, n, i, k)
			return
		}
		child = t.kid(tx, n, i)
	}
	t.remove(tx, child, k)
}

// removeFromInternal deletes key index i of internal node n (CLRS cases
// 2a/2b/2c).
func (t *BTree) removeFromInternal(tx *stm.Tx, n stm.Addr, i int, k uint64) {
	left := t.kid(tx, n, i)
	right := t.kid(tx, n, i+1)
	switch {
	case t.count(tx, left) > btMinKeys:
		// Replace with predecessor, then delete the predecessor below.
		pk, pv := t.maxKV(tx, left)
		t.setKV(tx, n, i, pk, pv)
		t.remove(tx, left, pk)
	case t.count(tx, right) > btMinKeys:
		sk, sv := t.minKV(tx, right)
		t.setKV(tx, n, i, sk, sv)
		t.remove(tx, right, sk)
	default:
		t.mergeChildren(tx, n, i)
		t.remove(tx, left, k)
	}
}

func (t *BTree) maxKV(tx *stm.Tx, n stm.Addr) (uint64, uint64) {
	for !t.isLeaf(tx, n) {
		n = t.kid(tx, n, t.count(tx, n))
	}
	c := t.count(tx, n)
	return t.key(tx, n, c-1), t.val(tx, n, c-1)
}

func (t *BTree) minKV(tx *stm.Tx, n stm.Addr) (uint64, uint64) {
	for !t.isLeaf(tx, n) {
		n = t.kid(tx, n, 0)
	}
	return t.key(tx, n, 0), t.val(tx, n, 0)
}

// fatten guarantees child i of n has more than btMinKeys keys, borrowing
// from a sibling or merging; it returns the (possibly shifted) child
// index to descend into.
func (t *BTree) fatten(tx *stm.Tx, n stm.Addr, i int) int {
	cnt := t.count(tx, n)
	child := t.kid(tx, n, i)
	if i > 0 && t.count(tx, t.kid(tx, n, i-1)) > btMinKeys {
		// Borrow from the left sibling through the separator.
		left := t.kid(tx, n, i-1)
		lc := t.count(tx, left)
		cc := t.count(tx, child)
		for j := cc; j > 0; j-- {
			t.setKV(tx, child, j, t.key(tx, child, j-1), t.val(tx, child, j-1))
		}
		if !t.isLeaf(tx, child) {
			for j := cc + 1; j > 0; j-- {
				t.setKid(tx, child, j, t.kid(tx, child, j-1))
			}
			t.setKid(tx, child, 0, t.kid(tx, left, lc))
		}
		t.setKV(tx, child, 0, t.key(tx, n, i-1), t.val(tx, n, i-1))
		t.setCount(tx, child, cc+1)
		t.setKV(tx, n, i-1, t.key(tx, left, lc-1), t.val(tx, left, lc-1))
		t.setCount(tx, left, lc-1)
		return i
	}
	if i < cnt && t.count(tx, t.kid(tx, n, i+1)) > btMinKeys {
		// Borrow from the right sibling.
		right := t.kid(tx, n, i+1)
		rc := t.count(tx, right)
		cc := t.count(tx, child)
		t.setKV(tx, child, cc, t.key(tx, n, i), t.val(tx, n, i))
		if !t.isLeaf(tx, child) {
			t.setKid(tx, child, cc+1, t.kid(tx, right, 0))
		}
		t.setCount(tx, child, cc+1)
		t.setKV(tx, n, i, t.key(tx, right, 0), t.val(tx, right, 0))
		for j := 0; j < rc-1; j++ {
			t.setKV(tx, right, j, t.key(tx, right, j+1), t.val(tx, right, j+1))
		}
		if !t.isLeaf(tx, right) {
			for j := 0; j < rc; j++ {
				t.setKid(tx, right, j, t.kid(tx, right, j+1))
			}
		}
		t.setCount(tx, right, rc-1)
		return i
	}
	// Merge with a sibling.
	if i == cnt {
		i--
	}
	t.mergeChildren(tx, n, i)
	return i
}

// mergeChildren merges child i+1 and separator i into child i and frees
// the right node.
func (t *BTree) mergeChildren(tx *stm.Tx, n stm.Addr, i int) {
	left := t.kid(tx, n, i)
	right := t.kid(tx, n, i+1)
	lc := t.count(tx, left)
	rc := t.count(tx, right)
	t.setKV(tx, left, lc, t.key(tx, n, i), t.val(tx, n, i))
	for j := 0; j < rc; j++ {
		t.setKV(tx, left, lc+1+j, t.key(tx, right, j), t.val(tx, right, j))
	}
	if !t.isLeaf(tx, left) {
		for j := 0; j <= rc; j++ {
			t.setKid(tx, left, lc+1+j, t.kid(tx, right, j))
		}
	}
	t.setCount(tx, left, lc+1+rc)
	// Close the gap in the parent.
	pc := t.count(tx, n)
	for j := i; j < pc-1; j++ {
		t.setKV(tx, n, j, t.key(tx, n, j+1), t.val(tx, n, j+1))
	}
	for j := i + 1; j < pc; j++ {
		t.setKid(tx, n, j, t.kid(tx, n, j+1))
	}
	t.setCount(tx, n, pc-1)
	tx.Free(right, btNodeSize)
}

// Len counts stored keys.
func (t *BTree) Len(tx *stm.Tx) int {
	return t.lenRec(tx, tx.LoadAddr(t.rootCell))
}

func (t *BTree) lenRec(tx *stm.Tx, n stm.Addr) int {
	cnt := t.count(tx, n)
	total := cnt
	if !t.isLeaf(tx, n) {
		for i := 0; i <= cnt; i++ {
			total += t.lenRec(tx, t.kid(tx, n, i))
		}
	}
	return total
}

// Keys returns all keys ascending.
func (t *BTree) Keys(tx *stm.Tx) []uint64 {
	var out []uint64
	t.walk(tx, tx.LoadAddr(t.rootCell), func(k, _ uint64) { out = append(out, k) })
	return out
}

func (t *BTree) walk(tx *stm.Tx, n stm.Addr, f func(k, v uint64)) {
	cnt := t.count(tx, n)
	leaf := t.isLeaf(tx, n)
	for i := 0; i < cnt; i++ {
		if !leaf {
			t.walk(tx, t.kid(tx, n, i), f)
		}
		f(t.key(tx, n, i), t.val(tx, n, i))
	}
	if !leaf {
		t.walk(tx, t.kid(tx, n, cnt), f)
	}
}

// CheckInvariants verifies B-tree structure: key counts within [t-1,
// 2t-1] (root exempt from the minimum), sorted keys, uniform leaf depth.
// Returns "" when all hold.
func (t *BTree) CheckInvariants(tx *stm.Tx) string {
	root := tx.LoadAddr(t.rootCell)
	_, msg := t.checkRec(tx, root, true, false, 0, false, 0)
	return msg
}

func (t *BTree) checkRec(tx *stm.Tx, n stm.Addr, isRoot bool, hasLo bool, lo uint64, hasHi bool, hi uint64) (depth int, msg string) {
	cnt := t.count(tx, n)
	if cnt > btMaxKeys {
		return 0, "btree: node overflow"
	}
	if !isRoot && cnt < btMinKeys {
		return 0, "btree: node underflow"
	}
	prevSet, prev := hasLo, lo
	for i := 0; i < cnt; i++ {
		k := t.key(tx, n, i)
		if prevSet && k <= prev {
			return 0, "btree: keys not strictly ascending"
		}
		if hasHi && k >= hi {
			return 0, "btree: key exceeds upper bound"
		}
		prevSet, prev = true, k
	}
	if t.isLeaf(tx, n) {
		return 1, ""
	}
	want := -1
	for i := 0; i <= cnt; i++ {
		cHasLo, clo := hasLo, lo
		cHasHi, chi := hasHi, hi
		if i > 0 {
			cHasLo, clo = true, t.key(tx, n, i-1)
		}
		if i < cnt {
			cHasHi, chi = true, t.key(tx, n, i)
		}
		d, m := t.checkRec(tx, t.kid(tx, n, i), false, cHasLo, clo, cHasHi, chi)
		if m != "" {
			return 0, m
		}
		if want == -1 {
			want = d
		} else if d != want {
			return 0, "btree: leaves at different depths"
		}
	}
	return want + 1, ""
}
