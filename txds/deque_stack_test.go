package txds

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/stm"
)

// TestDequeAgainstModel runs random operations on both a Deque and a
// slice model and compares every result and the full contents.
func TestDequeAgainstModel(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var d *Deque
	th.Atomic(func(tx *stm.Tx) { d = NewDeque(tx, rt, "dqm") })

	var model []uint64
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 6000; i++ {
		v := rng.Uint64() % 1000
		switch rng.Intn(6) {
		case 0, 1:
			th.Atomic(func(tx *stm.Tx) { d.PushFront(tx, v) })
			model = append([]uint64{v}, model...)
		case 2, 3:
			th.Atomic(func(tx *stm.Tx) { d.PushBack(tx, v) })
			model = append(model, v)
		case 4:
			var got uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) { got, ok = d.PopFront(tx) })
			if ok != (len(model) > 0) {
				t.Fatalf("op %d: PopFront ok=%v, model len %d", i, ok, len(model))
			}
			if ok {
				if got != model[0] {
					t.Fatalf("op %d: PopFront = %d, model %d", i, got, model[0])
				}
				model = model[1:]
			}
		case 5:
			var got uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) { got, ok = d.PopBack(tx) })
			if ok != (len(model) > 0) {
				t.Fatalf("op %d: PopBack ok=%v, model len %d", i, ok, len(model))
			}
			if ok {
				if got != model[len(model)-1] {
					t.Fatalf("op %d: PopBack = %d, model %d", i, got, model[len(model)-1])
				}
				model = model[:len(model)-1]
			}
		}
		if i%500 == 0 {
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				vals := d.Values(tx)
				if len(vals) != len(model) {
					t.Fatalf("op %d: Values len %d, model %d", i, len(vals), len(model))
				}
				for j := range vals {
					if vals[j] != model[j] {
						t.Fatalf("op %d: Values[%d] = %d, model %d", i, j, vals[j], model[j])
					}
				}
				if f, ok := d.Front(tx); ok != (len(model) > 0) || (ok && f != model[0]) {
					t.Fatalf("op %d: Front mismatch", i)
				}
				if bk, ok := d.Back(tx); ok != (len(model) > 0) || (ok && bk != model[len(model)-1]) {
					t.Fatalf("op %d: Back mismatch", i)
				}
			})
		}
	}
}

// TestDequeSymmetry is the testing/quick law: pushing a sequence at the
// back and popping from the front is FIFO; pushing at the back and popping
// from the back is LIFO.
func TestDequeSymmetry(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	idx := 0
	f := func(vals []uint64, lifo bool) bool {
		idx++
		var d *Deque
		th.Atomic(func(tx *stm.Tx) { d = NewDeque(tx, rt, "dqs"+itoa(idx)) })
		for _, v := range vals {
			vv := v
			th.Atomic(func(tx *stm.Tx) { d.PushBack(tx, vv) })
		}
		for i := range vals {
			want := vals[i]
			if lifo {
				want = vals[len(vals)-1-i]
			}
			var got uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) {
				if lifo {
					got, ok = d.PopBack(tx)
				} else {
					got, ok = d.PopFront(tx)
				}
			})
			if !ok || got != want {
				return false
			}
		}
		var empty bool
		th.Atomic(func(tx *stm.Tx) { empty = d.Len(tx) == 0 })
		return empty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestStackAgainstModel runs random push/pop against a slice model.
func TestStackAgainstModel(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var s *Stack
	th.Atomic(func(tx *stm.Tx) { s = NewStack(tx, rt, "stm") })
	var model []uint64
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 6000; i++ {
		v := rng.Uint64() % 1000
		if rng.Intn(2) == 0 {
			th.Atomic(func(tx *stm.Tx) { s.Push(tx, v) })
			model = append(model, v)
			continue
		}
		var got uint64
		var ok bool
		th.Atomic(func(tx *stm.Tx) { got, ok = s.Pop(tx) })
		if ok != (len(model) > 0) {
			t.Fatalf("op %d: Pop ok=%v, model len %d", i, ok, len(model))
		}
		if ok {
			if got != model[len(model)-1] {
				t.Fatalf("op %d: Pop = %d, model %d", i, got, model[len(model)-1])
			}
			model = model[:len(model)-1]
		}
		if i%500 == 0 {
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				if n := s.Len(tx); n != len(model) {
					t.Fatalf("op %d: Len = %d, model %d", i, n, len(model))
				}
				if top, ok := s.Peek(tx); ok != (len(model) > 0) || (ok && top != model[len(model)-1]) {
					t.Fatalf("op %d: Peek mismatch", i)
				}
			})
		}
	}
}

// TestStackConcurrentConservation pushes a known multiset from several
// goroutines while others pop; total pushed = total popped + remaining.
// All workers are plain goroutines going through the pooled rt.Run —
// no visible Thread management.
func TestStackConcurrentConservation(t *testing.T) {
	rt := newRT(t)
	var s *Stack
	if err := rt.Run(func(tx *stm.Tx) error {
		s = NewStack(tx, rt, "stc")
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const pushers, perP = 4, 400
	var popped sync.Map
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < pushers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				tag := uint64(id*perP + i)
				if err := rt.Run(func(tx *stm.Tx) error {
					s.Push(tx, tag)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	var popWg sync.WaitGroup
	for w := 0; w < 2; w++ {
		popWg.Add(1)
		go func() {
			defer popWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var tag uint64
				var ok bool
				if err := rt.Run(func(tx *stm.Tx) error {
					tag, ok = s.Pop(tx)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if ok {
					if _, dup := popped.LoadOrStore(tag, true); dup {
						t.Errorf("value %d popped twice", tag)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	popWg.Wait()

	// Drain the remainder single-threaded; the union must be exact.
	for {
		var tag uint64
		var ok bool
		if err := rt.Run(func(tx *stm.Tx) error {
			tag, ok = s.Pop(tx)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if _, dup := popped.LoadOrStore(tag, true); dup {
			t.Fatalf("value %d popped twice (drain)", tag)
		}
	}
	for i := 0; i < pushers*perP; i++ {
		if _, ok := popped.Load(uint64(i)); !ok {
			t.Fatalf("value %d lost", i)
		}
	}
}

// TestDequePooledMixedEnds drives the two deque ends from pooled
// goroutines (rt.Run) with read-only length probes mixed in: front
// workers cycle values through the front, back workers through the back,
// and per-end conservation must hold.
func TestDequePooledMixedEnds(t *testing.T) {
	rt := newRT(t)
	var d *Deque
	if err := rt.Run(func(tx *stm.Tx) error {
		d = NewDeque(tx, rt, "dqp")
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const workers, perW = 6, 120
	var pushed, popped atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			front := id%2 == 0
			for i := 0; i < perW; i++ {
				if err := rt.Run(func(tx *stm.Tx) error {
					if front {
						d.PushFront(tx, uint64(id))
					} else {
						d.PushBack(tx, uint64(id))
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				pushed.Add(1)
				if i%3 == 0 {
					if err := rt.Run(func(tx *stm.Tx) error {
						d.Len(tx)
						return nil
					}, stm.ReadOnly()); err != nil {
						t.Error(err)
						return
					}
				}
				var ok bool
				if err := rt.Run(func(tx *stm.Tx) error {
					if front {
						_, ok = d.PopFront(tx)
					} else {
						_, ok = d.PopBack(tx)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if ok {
					popped.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	var remaining int
	if err := rt.Run(func(tx *stm.Tx) error {
		remaining = d.Len(tx)
		return nil
	}, stm.ReadOnly()); err != nil {
		t.Fatal(err)
	}
	if got := popped.Load() + uint64(remaining); got != pushed.Load() {
		t.Fatalf("conservation: pushed %d, popped %d + remaining %d",
			pushed.Load(), popped.Load(), remaining)
	}
}
