package txds

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/stm"
)

// TestDequeAgainstModel runs random operations on both a Deque and a
// slice model and compares every result and the full contents.
func TestDequeAgainstModel(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var d *Deque
	th.Atomic(func(tx *stm.Tx) { d = NewDeque(tx, rt, "dqm") })

	var model []uint64
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 6000; i++ {
		v := rng.Uint64() % 1000
		switch rng.Intn(6) {
		case 0, 1:
			th.Atomic(func(tx *stm.Tx) { d.PushFront(tx, v) })
			model = append([]uint64{v}, model...)
		case 2, 3:
			th.Atomic(func(tx *stm.Tx) { d.PushBack(tx, v) })
			model = append(model, v)
		case 4:
			var got uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) { got, ok = d.PopFront(tx) })
			if ok != (len(model) > 0) {
				t.Fatalf("op %d: PopFront ok=%v, model len %d", i, ok, len(model))
			}
			if ok {
				if got != model[0] {
					t.Fatalf("op %d: PopFront = %d, model %d", i, got, model[0])
				}
				model = model[1:]
			}
		case 5:
			var got uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) { got, ok = d.PopBack(tx) })
			if ok != (len(model) > 0) {
				t.Fatalf("op %d: PopBack ok=%v, model len %d", i, ok, len(model))
			}
			if ok {
				if got != model[len(model)-1] {
					t.Fatalf("op %d: PopBack = %d, model %d", i, got, model[len(model)-1])
				}
				model = model[:len(model)-1]
			}
		}
		if i%500 == 0 {
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				vals := d.Values(tx)
				if len(vals) != len(model) {
					t.Fatalf("op %d: Values len %d, model %d", i, len(vals), len(model))
				}
				for j := range vals {
					if vals[j] != model[j] {
						t.Fatalf("op %d: Values[%d] = %d, model %d", i, j, vals[j], model[j])
					}
				}
				if f, ok := d.Front(tx); ok != (len(model) > 0) || (ok && f != model[0]) {
					t.Fatalf("op %d: Front mismatch", i)
				}
				if bk, ok := d.Back(tx); ok != (len(model) > 0) || (ok && bk != model[len(model)-1]) {
					t.Fatalf("op %d: Back mismatch", i)
				}
			})
		}
	}
}

// TestDequeSymmetry is the testing/quick law: pushing a sequence at the
// back and popping from the front is FIFO; pushing at the back and popping
// from the back is LIFO.
func TestDequeSymmetry(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	idx := 0
	f := func(vals []uint64, lifo bool) bool {
		idx++
		var d *Deque
		th.Atomic(func(tx *stm.Tx) { d = NewDeque(tx, rt, "dqs"+itoa(idx)) })
		for _, v := range vals {
			vv := v
			th.Atomic(func(tx *stm.Tx) { d.PushBack(tx, vv) })
		}
		for i := range vals {
			want := vals[i]
			if lifo {
				want = vals[len(vals)-1-i]
			}
			var got uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) {
				if lifo {
					got, ok = d.PopBack(tx)
				} else {
					got, ok = d.PopFront(tx)
				}
			})
			if !ok || got != want {
				return false
			}
		}
		var empty bool
		th.Atomic(func(tx *stm.Tx) { empty = d.Len(tx) == 0 })
		return empty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestStackAgainstModel runs random push/pop against a slice model.
func TestStackAgainstModel(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var s *Stack
	th.Atomic(func(tx *stm.Tx) { s = NewStack(tx, rt, "stm") })
	var model []uint64
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 6000; i++ {
		v := rng.Uint64() % 1000
		if rng.Intn(2) == 0 {
			th.Atomic(func(tx *stm.Tx) { s.Push(tx, v) })
			model = append(model, v)
			continue
		}
		var got uint64
		var ok bool
		th.Atomic(func(tx *stm.Tx) { got, ok = s.Pop(tx) })
		if ok != (len(model) > 0) {
			t.Fatalf("op %d: Pop ok=%v, model len %d", i, ok, len(model))
		}
		if ok {
			if got != model[len(model)-1] {
				t.Fatalf("op %d: Pop = %d, model %d", i, got, model[len(model)-1])
			}
			model = model[:len(model)-1]
		}
		if i%500 == 0 {
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				if n := s.Len(tx); n != len(model) {
					t.Fatalf("op %d: Len = %d, model %d", i, n, len(model))
				}
				if top, ok := s.Peek(tx); ok != (len(model) > 0) || (ok && top != model[len(model)-1]) {
					t.Fatalf("op %d: Peek mismatch", i)
				}
			})
		}
	}
}

// TestStackConcurrentConservation pushes a known multiset from several
// goroutines while others pop; total pushed = total popped + remaining.
func TestStackConcurrentConservation(t *testing.T) {
	rt := newRT(t)
	setup := rt.MustAttach()
	var s *Stack
	setup.Atomic(func(tx *stm.Tx) { s = NewStack(tx, rt, "stc") })
	rt.Detach(setup)

	const pushers, perP = 4, 400
	var popped sync.Map
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < pushers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for i := 0; i < perP; i++ {
				tag := uint64(id*perP + i)
				th.Atomic(func(tx *stm.Tx) { s.Push(tx, tag) })
			}
		}(w)
	}
	var popWg sync.WaitGroup
	for w := 0; w < 2; w++ {
		popWg.Add(1)
		go func() {
			defer popWg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var tag uint64
				var ok bool
				th.Atomic(func(tx *stm.Tx) { tag, ok = s.Pop(tx) })
				if ok {
					if _, dup := popped.LoadOrStore(tag, true); dup {
						t.Errorf("value %d popped twice", tag)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	popWg.Wait()

	// Drain the remainder single-threaded; the union must be exact.
	th := rt.MustAttach()
	defer rt.Detach(th)
	for {
		var tag uint64
		var ok bool
		th.Atomic(func(tx *stm.Tx) { tag, ok = s.Pop(tx) })
		if !ok {
			break
		}
		if _, dup := popped.LoadOrStore(tag, true); dup {
			t.Fatalf("value %d popped twice (drain)", tag)
		}
	}
	for i := 0; i < pushers*perP; i++ {
		if _, ok := popped.Load(uint64(i)); !ok {
			t.Fatalf("value %d lost", i)
		}
	}
}
