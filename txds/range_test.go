package txds

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/stm"
)

// ranger is the common Range surface of the ordered structures.
type ranger interface {
	Insert(tx *stm.Tx, k, v uint64) bool
	Range(tx *stm.Tx, lo, hi uint64, visit func(k, v uint64) bool)
}

func makeRangers(tx *stm.Tx, rt *stm.Runtime, prefix string) map[string]ranger {
	return map[string]ranger{
		"list":     NewList(tx, rt, prefix+".list"),
		"skiplist": NewSkipList(tx, rt, prefix+".skip", 5),
		"rbtree":   NewRBTree(tx, rt, prefix+".tree"),
		"btree":    NewBTree(tx, rt, prefix+".btree"),
	}
}

// TestRangeAgainstModel populates all four ordered structures with the
// same random keys and compares every Range query against a sorted-slice
// model.
func TestRangeAgainstModel(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var rs map[string]ranger
	th.Atomic(func(tx *stm.Tx) { rs = makeRangers(tx, rt, "rng") })

	rng := rand.New(rand.NewSource(83))
	model := map[uint64]uint64{}
	for i := 0; i < 400; i++ {
		k := uint64(rng.Intn(1000))
		v := uint64(i)
		th.Atomic(func(tx *stm.Tx) {
			for _, r := range rs {
				r.Insert(tx, k, v)
			}
		})
		if _, ok := model[k]; !ok {
			model[k] = v
		}
	}
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	queries := [][2]uint64{
		{0, 999}, {100, 200}, {500, 500}, {990, 2000}, {700, 100} /* empty */, {0, 0},
	}
	for name, r := range rs {
		for _, q := range queries {
			lo, hi := q[0], q[1]
			var want [][2]uint64
			for _, k := range keys {
				if k >= lo && k <= hi {
					want = append(want, [2]uint64{k, model[k]})
				}
			}
			var got [][2]uint64
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				got = got[:0]
				r.Range(tx, lo, hi, func(k, v uint64) bool {
					got = append(got, [2]uint64{k, v})
					return true
				})
			})
			if len(got) != len(want) {
				t.Fatalf("%s Range[%d,%d]: %d results, want %d", name, lo, hi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s Range[%d,%d][%d] = %v, want %v", name, lo, hi, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRangeEarlyStop checks the visitor's false return stops every
// structure's scan immediately.
func TestRangeEarlyStop(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var rs map[string]ranger
	th.Atomic(func(tx *stm.Tx) { rs = makeRangers(tx, rt, "res") })
	th.Atomic(func(tx *stm.Tx) {
		for k := uint64(0); k < 100; k++ {
			for _, r := range rs {
				r.Insert(tx, k, k)
			}
		}
	})
	for name, r := range rs {
		count := 0
		th.ReadOnlyAtomic(func(tx *stm.Tx) {
			count = 0
			r.Range(tx, 0, 99, func(k, v uint64) bool {
				count++
				return count < 5
			})
		})
		if count != 5 {
			t.Fatalf("%s visited %d after early stop, want 5", name, count)
		}
	}
}

// TestRangeProperty is the testing/quick law: Range over the full domain
// visits exactly the inserted key set ascending, on every structure.
func TestRangeProperty(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	idx := 0
	f := func(ks []uint16) bool {
		idx++
		var rs map[string]ranger
		th.Atomic(func(tx *stm.Tx) { rs = makeRangers(tx, rt, "rp"+itoa(idx)) })
		set := map[uint64]bool{}
		for _, k := range ks {
			kk := uint64(k)
			th.Atomic(func(tx *stm.Tx) {
				for _, r := range rs {
					r.Insert(tx, kk, kk)
				}
			})
			set[kk] = true
		}
		ok := true
		th.ReadOnlyAtomic(func(tx *stm.Tx) {
			for _, r := range rs {
				var got []uint64
				r.Range(tx, 0, ^uint64(0), func(k, v uint64) bool {
					got = append(got, k)
					return true
				})
				if len(got) != len(set) {
					ok = false
					return
				}
				for i, k := range got {
					if !set[k] || (i > 0 && got[i-1] >= k) {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
