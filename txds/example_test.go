package txds_test

import (
	"fmt"

	"repro/stm"
	"repro/txds"
)

func newExampleRT() (*stm.Runtime, *stm.Thread) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 18})
	return rt, rt.MustAttach()
}

// ExampleRBTree shows the ordered-map surface of the red/black tree.
func ExampleRBTree() {
	rt, th := newExampleRT()
	defer rt.Detach(th)
	var tree *txds.RBTree
	th.Atomic(func(tx *stm.Tx) { tree = txds.NewRBTree(tx, rt, "ex.tree") })
	th.Atomic(func(tx *stm.Tx) {
		tree.Insert(tx, 30, 300)
		tree.Insert(tx, 10, 100)
		tree.Insert(tx, 20, 200)
	})
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		fmt.Println("keys:", tree.Keys(tx))
		v, _ := tree.Lookup(tx, 20)
		fmt.Println("tree[20] =", v)
		minK, _ := tree.Min(tx)
		fmt.Println("min key =", minK)
	})
	// Output:
	// keys: [10 20 30]
	// tree[20] = 200
	// min key = 10
}

// ExamplePriorityQueue shows min-priority ordering with duplicates.
func ExamplePriorityQueue() {
	rt, th := newExampleRT()
	defer rt.Detach(th)
	var pq *txds.PriorityQueue
	th.Atomic(func(tx *stm.Tx) { pq = txds.NewPriorityQueue(tx, rt, "ex.pq", 1) })
	th.Atomic(func(tx *stm.Tx) {
		pq.Insert(tx, 5, 50)
		pq.Insert(tx, 1, 10)
		pq.Insert(tx, 5, 51)
		pq.Insert(tx, 3, 30)
	})
	th.Atomic(func(tx *stm.Tx) {
		for {
			prio, _, ok := pq.PopMin(tx)
			if !ok {
				break
			}
			fmt.Print(prio, " ")
		}
		fmt.Println()
	})
	// Output: 1 3 5 5
}

// ExampleDeque shows both ends of the double-ended queue.
func ExampleDeque() {
	rt, th := newExampleRT()
	defer rt.Detach(th)
	var d *txds.Deque
	th.Atomic(func(tx *stm.Tx) { d = txds.NewDeque(tx, rt, "ex.deque") })
	th.Atomic(func(tx *stm.Tx) {
		d.PushBack(tx, 2)
		d.PushFront(tx, 1)
		d.PushBack(tx, 3)
	})
	th.ReadOnlyAtomic(func(tx *stm.Tx) { fmt.Println(d.Values(tx)) })
	th.Atomic(func(tx *stm.Tx) {
		front, _ := d.PopFront(tx)
		back, _ := d.PopBack(tx)
		fmt.Println(front, back)
	})
	// Output:
	// [1 2 3]
	// 1 3
}

// ExampleQueue shows FIFO ordering across transactions.
func ExampleQueue() {
	rt, th := newExampleRT()
	defer rt.Detach(th)
	var q *txds.Queue
	th.Atomic(func(tx *stm.Tx) { q = txds.NewQueue(tx, rt, "ex.queue") })
	for v := uint64(1); v <= 3; v++ {
		vv := v
		th.Atomic(func(tx *stm.Tx) { q.Enqueue(tx, vv) })
	}
	for {
		var v uint64
		var ok bool
		th.Atomic(func(tx *stm.Tx) { v, ok = q.Dequeue(tx) })
		if !ok {
			break
		}
		fmt.Print(v, " ")
	}
	fmt.Println()
	// Output: 1 2 3
}

// ExampleCounterArray shows the invariant-preserving transfer helper.
func ExampleCounterArray() {
	rt, th := newExampleRT()
	defer rt.Detach(th)
	var accounts *txds.CounterArray
	th.Atomic(func(tx *stm.Tx) {
		accounts = txds.NewCounterArray(tx, rt, "ex.accounts", 4, 100)
	})
	th.Atomic(func(tx *stm.Tx) { accounts.Transfer(tx, 0, 3, 25) })
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		fmt.Println("a0:", accounts.Get(tx, 0), "a3:", accounts.Get(tx, 3), "sum:", accounts.Sum(tx))
	})
	// Output: a0: 75 a3: 125 sum: 400
}
