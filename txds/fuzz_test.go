package txds

import (
	"testing"

	"repro/stm"
)

// Fuzz targets: each decodes a byte stream as an operation script and
// cross-checks a transactional structure against a plain Go model. Run
// with `go test -fuzz=FuzzBTreeOps ./txds` for continuous fuzzing; under
// plain `go test` the seed corpus below runs as regression tests.

func fuzzSeedScripts(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte("insert-remove-insert-remove"))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
}

// FuzzBTreeOps interprets bytes as ops on a B-tree vs a map model.
func FuzzBTreeOps(f *testing.F) {
	fuzzSeedScripts(f)
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		rt, err := stm.New(stm.Config{HeapWords: 1 << 18, BlockShift: 8})
		if err != nil {
			t.Skip()
		}
		th := rt.MustAttach()
		defer rt.Detach(th)
		var bt *BTree
		th.Atomic(func(tx *stm.Tx) { bt = NewBTree(tx, rt, "fz") })
		model := map[uint64]uint64{}
		for i := 0; i+1 < len(script); i += 2 {
			op, k := script[i]%3, uint64(script[i+1]%64)
			switch op {
			case 0:
				var got bool
				th.Atomic(func(tx *stm.Tx) { got = bt.Insert(tx, k, k) })
				_, existed := model[k]
				if got == existed {
					t.Fatalf("op %d: Insert(%d)=%v existed=%v", i, k, got, existed)
				}
				model[k] = k
			case 1:
				var ok bool
				th.Atomic(func(tx *stm.Tx) { _, ok = bt.Remove(tx, k) })
				if _, existed := model[k]; ok != existed {
					t.Fatalf("op %d: Remove(%d)=%v existed=%v", i, k, ok, existed)
				}
				delete(model, k)
			default:
				var ok bool
				th.ReadOnlyAtomic(func(tx *stm.Tx) { ok = bt.Contains(tx, k) })
				if _, existed := model[k]; ok != existed {
					t.Fatalf("op %d: Contains(%d)=%v existed=%v", i, k, ok, existed)
				}
			}
		}
		th.ReadOnlyAtomic(func(tx *stm.Tx) {
			if msg := bt.CheckInvariants(tx); msg != "" {
				t.Fatal(msg)
			}
			if got := bt.Len(tx); got != len(model) {
				t.Fatalf("Len=%d model=%d", got, len(model))
			}
		})
	})
}

// FuzzDequeOps interprets bytes as ops on a deque vs a slice model.
func FuzzDequeOps(f *testing.F) {
	fuzzSeedScripts(f)
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		rt, err := stm.New(stm.Config{HeapWords: 1 << 18, BlockShift: 8})
		if err != nil {
			t.Skip()
		}
		th := rt.MustAttach()
		defer rt.Detach(th)
		var d *Deque
		th.Atomic(func(tx *stm.Tx) { d = NewDeque(tx, rt, "fzd") })
		var model []uint64
		for i, b := range script {
			v := uint64(b)
			switch b % 4 {
			case 0:
				th.Atomic(func(tx *stm.Tx) { d.PushFront(tx, v) })
				model = append([]uint64{v}, model...)
			case 1:
				th.Atomic(func(tx *stm.Tx) { d.PushBack(tx, v) })
				model = append(model, v)
			case 2:
				var got uint64
				var ok bool
				th.Atomic(func(tx *stm.Tx) { got, ok = d.PopFront(tx) })
				if ok != (len(model) > 0) || (ok && got != model[0]) {
					t.Fatalf("op %d: PopFront mismatch", i)
				}
				if ok {
					model = model[1:]
				}
			default:
				var got uint64
				var ok bool
				th.Atomic(func(tx *stm.Tx) { got, ok = d.PopBack(tx) })
				if ok != (len(model) > 0) || (ok && got != model[len(model)-1]) {
					t.Fatalf("op %d: PopBack mismatch", i)
				}
				if ok {
					model = model[:len(model)-1]
				}
			}
		}
		th.ReadOnlyAtomic(func(tx *stm.Tx) {
			if got := d.Len(tx); got != len(model) {
				t.Fatalf("Len=%d model=%d", got, len(model))
			}
		})
	})
}

// FuzzPriorityQueueOps interprets bytes as insert/pop ops vs a sorted
// multiset model.
func FuzzPriorityQueueOps(f *testing.F) {
	fuzzSeedScripts(f)
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		rt, err := stm.New(stm.Config{HeapWords: 1 << 18, BlockShift: 8})
		if err != nil {
			t.Skip()
		}
		th := rt.MustAttach()
		defer rt.Detach(th)
		var q *PriorityQueue
		th.Atomic(func(tx *stm.Tx) { q = NewPriorityQueue(tx, rt, "fzq", 1) })
		counts := map[uint64]int{} // priority multiset
		size := 0
		for i, b := range script {
			if b%3 != 0 && size > 0 {
				var prio uint64
				var ok bool
				th.Atomic(func(tx *stm.Tx) { prio, _, ok = q.PopMin(tx) })
				if !ok {
					t.Fatalf("op %d: PopMin failed with size %d", i, size)
				}
				// Must be the minimum present priority.
				for p, c := range counts {
					if c > 0 && p < prio {
						t.Fatalf("op %d: popped %d but %d present", i, prio, p)
					}
				}
				counts[prio]--
				size--
				continue
			}
			p := uint64(b % 32)
			th.Atomic(func(tx *stm.Tx) { q.Insert(tx, p, p) })
			counts[p]++
			size++
		}
		th.ReadOnlyAtomic(func(tx *stm.Tx) {
			if got := q.Len(tx); got != size {
				t.Fatalf("Len=%d model=%d", got, size)
			}
		})
	})
}
