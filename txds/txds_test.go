package txds

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/stm"
)

func newRT(t testing.TB) *stm.Runtime {
	t.Helper()
	rt, err := stm.New(stm.Config{HeapWords: 1 << 21, BlockShift: 10})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// setAPI abstracts the common map interface so one model test covers all
// four intset structures.
type setAPI interface {
	Lookup(tx *stm.Tx, k uint64) (uint64, bool)
	Contains(tx *stm.Tx, k uint64) bool
	Insert(tx *stm.Tx, k, v uint64) bool
	Remove(tx *stm.Tx, k uint64) (uint64, bool)
	Len(tx *stm.Tx) int
}

type upserter interface {
	Set(tx *stm.Tx, k, v uint64) bool
}

func makeSets(tx *stm.Tx, rt *stm.Runtime, prefix string) map[string]setAPI {
	return map[string]setAPI{
		"list":     NewList(tx, rt, prefix+".list"),
		"skiplist": NewSkipList(tx, rt, prefix+".skip", 42),
		"rbtree":   NewRBTree(tx, rt, prefix+".tree"),
		"hashset":  NewHashSet(tx, rt, prefix+".hash", 64),
	}
}

// TestSetsAgainstModel runs a long random operation sequence against a
// map[uint64]uint64 model and checks every result.
func TestSetsAgainstModel(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var sets map[string]setAPI
	th.Atomic(func(tx *stm.Tx) { sets = makeSets(tx, rt, "model") })

	for name, s := range sets {
		t.Run(name, func(t *testing.T) {
			model := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(7))
			const keyRange = 200
			for i := 0; i < 8000; i++ {
				k := uint64(rng.Intn(keyRange))
				v := rng.Uint64()
				switch rng.Intn(4) {
				case 0: // insert
					var got bool
					th.Atomic(func(tx *stm.Tx) { got = s.Insert(tx, k, v) })
					_, existed := model[k]
					if got == existed {
						t.Fatalf("op %d: Insert(%d) = %v, model existed=%v", i, k, got, existed)
					}
					if !existed {
						model[k] = v
					}
				case 1: // remove
					var got uint64
					var ok bool
					th.Atomic(func(tx *stm.Tx) { got, ok = s.Remove(tx, k) })
					want, existed := model[k]
					if ok != existed || (ok && got != want) {
						t.Fatalf("op %d: Remove(%d) = (%d,%v), model (%d,%v)", i, k, got, ok, want, existed)
					}
					delete(model, k)
				case 2: // lookup
					var got uint64
					var ok bool
					th.Atomic(func(tx *stm.Tx) { got, ok = s.Lookup(tx, k) })
					want, existed := model[k]
					if ok != existed || (ok && got != want) {
						t.Fatalf("op %d: Lookup(%d) = (%d,%v), model (%d,%v)", i, k, got, ok, want, existed)
					}
				case 3: // contains
					var got bool
					th.Atomic(func(tx *stm.Tx) { got = s.Contains(tx, k) })
					if _, existed := model[k]; got != existed {
						t.Fatalf("op %d: Contains(%d) = %v, model %v", i, k, got, existed)
					}
				}
			}
			var n int
			th.Atomic(func(tx *stm.Tx) { n = s.Len(tx) })
			if n != len(model) {
				t.Fatalf("Len = %d, model %d", n, len(model))
			}
		})
	}
}

// TestSortedKeys checks the ordered structures return ascending keys.
func TestSortedKeys(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var l *List
	var sl *SkipList
	var rb *RBTree
	th.Atomic(func(tx *stm.Tx) {
		l = NewList(tx, rt, "sk.list")
		sl = NewSkipList(tx, rt, "sk.skip", 9)
		rb = NewRBTree(tx, rt, "sk.tree")
	})
	keys := []uint64{42, 7, 0, 99, 13, 55, 1, 100, 64}
	for _, k := range keys {
		th.Atomic(func(tx *stm.Tx) {
			l.Insert(tx, k, k*10)
			sl.Insert(tx, k, k*10)
			rb.Insert(tx, k, k*10)
		})
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	check := func(name string, got []uint64) {
		if len(got) != len(want) {
			t.Fatalf("%s: %d keys, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: keys %v, want %v", name, got, want)
			}
		}
	}
	th.Atomic(func(tx *stm.Tx) {
		check("list", l.Keys(tx))
		check("skiplist", sl.Keys(tx))
		check("rbtree", rb.Keys(tx))
	})
}

func TestUpsert(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var sets map[string]setAPI
	th.Atomic(func(tx *stm.Tx) { sets = makeSets(tx, rt, "ups") })
	for name, s := range sets {
		up, ok := s.(upserter)
		if !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			th.Atomic(func(tx *stm.Tx) {
				if !up.Set(tx, 5, 50) {
					t.Error("Set of fresh key reported update")
				}
				if up.Set(tx, 5, 60) {
					t.Error("Set of existing key reported insert")
				}
				if v, ok := s.Lookup(tx, 5); !ok || v != 60 {
					t.Errorf("Lookup = (%d,%v)", v, ok)
				}
			})
		})
	}
}

// TestRBTreeInvariants hammers the tree with skewed insert/delete and
// validates the red-black properties after every batch.
func TestRBTreeInvariants(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var rb *RBTree
	th.Atomic(func(tx *stm.Tx) { rb = NewRBTree(tx, rt, "inv.tree") })
	rng := rand.New(rand.NewSource(3))
	live := make(map[uint64]bool)
	for batch := 0; batch < 60; batch++ {
		th.Atomic(func(tx *stm.Tx) {
			for i := 0; i < 40; i++ {
				k := uint64(rng.Intn(300))
				if rng.Intn(2) == 0 {
					if rb.Insert(tx, k, k) {
						live[k] = true
					}
				} else {
					if _, ok := rb.Remove(tx, k); ok {
						delete(live, k)
					}
				}
			}
		})
		th.Atomic(func(tx *stm.Tx) {
			if msg := rb.CheckInvariants(tx); msg != "" {
				t.Fatalf("batch %d: %s", batch, msg)
			}
			if n := rb.Len(tx); n != len(live) {
				t.Fatalf("batch %d: Len=%d live=%d", batch, n, len(live))
			}
		})
	}
	// Note: the live map above is mutated inside transactions; single
	// attempts never retry here (no concurrency), so it stays in sync.
}

func TestRBTreeMin(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var rb *RBTree
	th.Atomic(func(tx *stm.Tx) { rb = NewRBTree(tx, rt, "min.tree") })
	th.Atomic(func(tx *stm.Tx) {
		if _, ok := rb.Min(tx); ok {
			t.Error("Min on empty tree")
		}
		rb.Insert(tx, 9, 0)
		rb.Insert(tx, 3, 0)
		rb.Insert(tx, 7, 0)
		if k, ok := rb.Min(tx); !ok || k != 3 {
			t.Errorf("Min = (%d,%v)", k, ok)
		}
		rb.Remove(tx, 3)
		if k, _ := rb.Min(tx); k != 7 {
			t.Errorf("Min after remove = %d", k)
		}
	})
}

// TestConcurrentSetMembership checks that concurrent disjoint inserts all
// land, for every structure, under simulated interleaving.
func TestConcurrentSetMembership(t *testing.T) {
	rt, err := stm.New(stm.Config{HeapWords: 1 << 21, BlockShift: 10, YieldEveryOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	setup := rt.MustAttach()
	var sets map[string]setAPI
	setup.Atomic(func(tx *stm.Tx) { sets = makeSets(tx, rt, "conc") })
	rt.Detach(setup)

	for name, s := range sets {
		t.Run(name, func(t *testing.T) {
			const workers, perW = 4, 400
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(base uint64) {
					defer wg.Done()
					th := rt.MustAttach()
					defer rt.Detach(th)
					for i := uint64(0); i < perW; i++ {
						k := base*perW + i
						th.Atomic(func(tx *stm.Tx) { s.Insert(tx, k, k) })
					}
				}(uint64(w))
			}
			wg.Wait()
			th := rt.MustAttach()
			defer rt.Detach(th)
			var n int
			th.Atomic(func(tx *stm.Tx) { n = s.Len(tx) })
			if n != workers*perW {
				t.Fatalf("Len = %d, want %d", n, workers*perW)
			}
			th.Atomic(func(tx *stm.Tx) {
				for w := 0; w < workers; w++ {
					for i := uint64(0); i < perW; i += 37 {
						k := uint64(w)*perW + i
						if !s.Contains(tx, k) {
							t.Fatalf("missing key %d", k)
						}
					}
				}
			})
		})
	}
}

// TestConcurrentRBTreeShape runs mixed concurrent updates and validates
// tree shape afterwards.
func TestConcurrentRBTreeShape(t *testing.T) {
	rt, err := stm.New(stm.Config{HeapWords: 1 << 21, BlockShift: 10, YieldEveryOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	setup := rt.MustAttach()
	var rb *RBTree
	setup.Atomic(func(tx *stm.Tx) { rb = NewRBTree(tx, rt, "cshape") })
	rt.Detach(setup)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1200; i++ {
				k := uint64(rng.Intn(500))
				if rng.Intn(100) < 50 {
					th.Atomic(func(tx *stm.Tx) { rb.Insert(tx, k, k) })
				} else {
					th.Atomic(func(tx *stm.Tx) { rb.Remove(tx, k) })
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.Atomic(func(tx *stm.Tx) {
		if msg := rb.CheckInvariants(tx); msg != "" {
			t.Fatal(msg)
		}
	})
}

func TestQueueFIFO(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var q *Queue
	th.Atomic(func(tx *stm.Tx) { q = NewQueue(tx, rt, "fifo") })
	th.Atomic(func(tx *stm.Tx) {
		if _, ok := q.Dequeue(tx); ok {
			t.Error("dequeue from empty queue")
		}
		if _, ok := q.Peek(tx); ok {
			t.Error("peek on empty queue")
		}
	})
	for i := uint64(1); i <= 5; i++ {
		th.Atomic(func(tx *stm.Tx) { q.Enqueue(tx, i) })
	}
	th.Atomic(func(tx *stm.Tx) {
		if n := q.Len(tx); n != 5 {
			t.Errorf("Len = %d", n)
		}
		if v, _ := q.Peek(tx); v != 1 {
			t.Errorf("Peek = %d", v)
		}
	})
	for i := uint64(1); i <= 5; i++ {
		th.Atomic(func(tx *stm.Tx) {
			v, ok := q.Dequeue(tx)
			if !ok || v != i {
				t.Errorf("Dequeue = (%d,%v), want %d", v, ok, i)
			}
		})
	}
	// Empty again; enqueue after drain must relink head.
	th.Atomic(func(tx *stm.Tx) {
		q.Enqueue(tx, 42)
		if v, ok := q.Dequeue(tx); !ok || v != 42 {
			t.Errorf("after drain: (%d,%v)", v, ok)
		}
	})
}

// TestQueueConcurrentTransfer pushes tokens through two queues and checks
// none are lost or duplicated.
func TestQueueConcurrentTransfer(t *testing.T) {
	rt, err := stm.New(stm.Config{HeapWords: 1 << 21, BlockShift: 10, YieldEveryOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	setup := rt.MustAttach()
	var q1, q2 *Queue
	const tokens = 500
	setup.Atomic(func(tx *stm.Tx) {
		q1 = NewQueue(tx, rt, "xfer.q1")
		q2 = NewQueue(tx, rt, "xfer.q2")
	})
	for i := uint64(0); i < tokens; i++ {
		setup.Atomic(func(tx *stm.Tx) { q1.Enqueue(tx, i) })
	}
	rt.Detach(setup)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for {
				moved := false
				th.Atomic(func(tx *stm.Tx) {
					if v, ok := q1.Dequeue(tx); ok {
						q2.Enqueue(tx, v)
						moved = true
					}
				})
				if !moved {
					return
				}
			}
		}()
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.Atomic(func(tx *stm.Tx) {
		if n := q1.Len(tx); n != 0 {
			t.Errorf("q1 still has %d", n)
		}
		if n := q2.Len(tx); n != tokens {
			t.Errorf("q2 has %d, want %d", n, tokens)
		}
	})
	// All tokens distinct.
	seen := make(map[uint64]bool)
	for i := 0; i < tokens; i++ {
		th.Atomic(func(tx *stm.Tx) {
			v, ok := q2.Dequeue(tx)
			if !ok {
				t.Fatal("queue drained early")
			}
			if seen[v] {
				t.Fatalf("duplicate token %d", v)
			}
			seen[v] = true
		})
	}
}

func TestCounterArray(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var c *CounterArray
	th.Atomic(func(tx *stm.Tx) { c = NewCounterArray(tx, rt, "cnt", 16, 100) })
	if c.N() != 16 {
		t.Fatalf("N = %d", c.N())
	}
	th.Atomic(func(tx *stm.Tx) {
		if s := c.Sum(tx); s != 1600 {
			t.Errorf("Sum = %d", s)
		}
		c.Add(tx, 3, 5)
		if v := c.Get(tx, 3); v != 105 {
			t.Errorf("Get = %d", v)
		}
		if !c.Transfer(tx, 3, 4, 50) {
			t.Error("transfer refused")
		}
		if c.Transfer(tx, 5, 6, 1000) {
			t.Error("overdraft allowed")
		}
		c.Set(tx, 0, 7)
		if v := c.Get(tx, 0); v != 7 {
			t.Errorf("Set/Get = %d", v)
		}
		if s := c.Sum(tx); s != 1600+5-100+7 {
			t.Errorf("final Sum = %d", s)
		}
	})
}

// TestCounterConservation checks the bank invariant under concurrency.
func TestCounterConservation(t *testing.T) {
	rt, err := stm.New(stm.Config{HeapWords: 1 << 21, BlockShift: 10, YieldEveryOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	setup := rt.MustAttach()
	var c *CounterArray
	const n, initBal = 32, 1000
	setup.Atomic(func(tx *stm.Tx) { c = NewCounterArray(tx, rt, "bankc", n, initBal) })
	rt.Detach(setup)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				from, to := rng.Intn(n), rng.Intn(n)
				th.Atomic(func(tx *stm.Tx) { c.Transfer(tx, from, to, uint64(rng.Intn(20))) })
			}
		}(int64(w) * 13)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.Atomic(func(tx *stm.Tx) {
		if s := c.Sum(tx); s != n*initBal {
			t.Fatalf("Sum = %d, want %d", s, n*initBal)
		}
	})
}

// TestStructuresFormDistinctPartitions profiles one transaction touching
// all structures and confirms the analyzer separates them.
func TestStructuresFormDistinctPartitions(t *testing.T) {
	rt := newRT(t)
	rt.StartProfiling()
	th := rt.MustAttach()
	var l *List
	var sl *SkipList
	var rb *RBTree
	var hs *HashSet
	th.Atomic(func(tx *stm.Tx) {
		l = NewList(tx, rt, "pp.list")
		sl = NewSkipList(tx, rt, "pp.skip", 1)
		rb = NewRBTree(tx, rt, "pp.tree")
		hs = NewHashSet(tx, rt, "pp.hash", 16)
	})
	for i := uint64(0); i < 30; i++ {
		th.Atomic(func(tx *stm.Tx) {
			l.Insert(tx, i, i)
			sl.Insert(tx, i, i)
			rb.Insert(tx, i, i)
			hs.Insert(tx, i, i)
		})
	}
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		t.Fatal(err)
	}
	// global + 4 structures (each with 2 sites).
	if got := plan.NumPartitions(); got != 5 {
		t.Fatalf("NumPartitions = %d, want 5\n%s", got, plan.Describe(rt.Sites()))
	}
	// Structures keep working after partitioning, in their own partitions.
	th.Atomic(func(tx *stm.Tx) {
		if !l.Contains(tx, 7) || !sl.Contains(tx, 7) || !rb.Contains(tx, 7) || !hs.Contains(tx, 7) {
			t.Error("data lost across partitioning")
		}
	})
	rt.Detach(th)
}
