package txds

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/stm"
)

// TestPriorityQueueOrdering inserts random priorities and checks PopMin
// yields them in non-decreasing order, duplicates included.
func TestPriorityQueueOrdering(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var q *PriorityQueue
	th.Atomic(func(tx *stm.Tx) { q = NewPriorityQueue(tx, rt, "pqo", 1) })

	rng := rand.New(rand.NewSource(11))
	want := make([]uint64, 0, 500)
	for i := 0; i < 500; i++ {
		p := uint64(rng.Intn(50)) // few distinct priorities: force duplicates
		want = append(want, p)
		th.Atomic(func(tx *stm.Tx) { q.Insert(tx, p, uint64(i)) })
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	var got []uint64
	th.Atomic(func(tx *stm.Tx) {
		if n := q.Len(tx); n != len(want) {
			t.Fatalf("Len = %d, want %d", n, len(want))
		}
		got, _ = q.Drain(tx)
	})
	if len(got) != len(want) {
		t.Fatalf("drained %d elements, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pop %d: priority %d, want %d", i, got[i], want[i])
		}
	}
	th.Atomic(func(tx *stm.Tx) {
		if _, _, ok := q.PopMin(tx); ok {
			t.Fatal("PopMin succeeded on empty queue")
		}
		if _, _, ok := q.Min(tx); ok {
			t.Fatal("Min succeeded on empty queue")
		}
		if q.Len(tx) != 0 {
			t.Fatal("drained queue not empty")
		}
	})
}

// TestPriorityQueueMinMatchesPop checks Min is always what the next
// PopMin removes.
func TestPriorityQueueMinMatchesPop(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	var q *PriorityQueue
	th.Atomic(func(tx *stm.Tx) { q = NewPriorityQueue(tx, rt, "pqm", 3) })
	rng := rand.New(rand.NewSource(13))
	live := 0
	for i := 0; i < 2000; i++ {
		if live == 0 || rng.Intn(3) != 0 {
			th.Atomic(func(tx *stm.Tx) { q.Insert(tx, uint64(rng.Intn(1000)), uint64(i)) })
			live++
			continue
		}
		th.Atomic(func(tx *stm.Tx) {
			mp, mv, mok := q.Min(tx)
			pp, pv, pok := q.PopMin(tx)
			if !mok || !pok || mp != pp || mv != pv {
				t.Fatalf("Min (%d,%d,%v) != PopMin (%d,%d,%v)", mp, mv, mok, pp, pv, pok)
			}
		})
		live--
	}
}

// TestPriorityQueueProperty is the testing/quick law: for any priority
// multiset, draining the queue returns exactly the sorted multiset.
func TestPriorityQueueProperty(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	idx := 0
	f := func(prios []uint16) bool {
		idx++
		var q *PriorityQueue
		th.Atomic(func(tx *stm.Tx) { q = NewPriorityQueue(tx, rt, "pqq"+string(rune('a'+idx%26))+itoa(idx), uint64(idx)) })
		for i, p := range prios {
			pp := uint64(p)
			th.Atomic(func(tx *stm.Tx) { q.Insert(tx, pp, uint64(i)) })
		}
		want := make([]uint64, len(prios))
		for i, p := range prios {
			want[i] = uint64(p)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []uint64
		th.Atomic(func(tx *stm.Tx) { got, _ = q.Drain(tx) })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestPriorityQueueConcurrent has producers inserting tagged values and
// consumers popping; afterwards every produced element was consumed
// exactly once (no loss, no duplication under contention).
func TestPriorityQueueConcurrent(t *testing.T) {
	rt := newRT(t)
	setup := rt.MustAttach()
	var q *PriorityQueue
	setup.Atomic(func(tx *stm.Tx) { q = NewPriorityQueue(tx, rt, "pqc", 5) })
	rt.Detach(setup)

	const producers, perP = 4, 300
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for i := 0; i < perP; i++ {
				tag := uint64(id*perP + i)
				th.Atomic(func(tx *stm.Tx) { q.Insert(tx, tag%37, tag) })
			}
		}(w)
	}
	seen := make([]bool, producers*perP)
	var mu sync.Mutex
	popped := 0
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			misses := 0
			for {
				mu.Lock()
				done := popped >= producers*perP
				mu.Unlock()
				if done {
					return
				}
				var tag uint64
				var ok bool
				th.Atomic(func(tx *stm.Tx) { _, tag, ok = q.PopMin(tx) })
				if !ok {
					misses++
					if misses > 1_000_000 {
						t.Error("consumer starved")
						return
					}
					continue
				}
				mu.Lock()
				if seen[tag] {
					t.Errorf("value %d popped twice", tag)
				}
				seen[tag] = true
				popped++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d lost", i)
		}
	}
}
