package txds

import "repro/stm"

// Stack is a LIFO stack over a singly-linked chain. All operations fight
// over the single top-of-stack word, giving the highest possible conflict
// density per structure — every pair of concurrent operations conflicts.
type Stack struct {
	top      stm.Addr // one word: pointer to the top node
	nodeSite stm.SiteID
}

const (
	stVal       = 0
	stNext      = 1
	stNodeWords = 2
)

// NewStack creates an empty stack with sites "<name>.top" and
// "<name>.node".
func NewStack(tx *stm.Tx, rt *stm.Runtime, name string) *Stack {
	tSite := rt.RegisterSite(name + ".top")
	nSite := rt.RegisterSite(name + ".node")
	top := tx.Alloc(tSite, 1)
	tx.StoreAddr(top, stm.Nil)
	return &Stack{top: top, nodeSite: nSite}
}

// Push adds v on top.
func (s *Stack) Push(tx *stm.Tx, v uint64) {
	n := tx.Alloc(s.nodeSite, stNodeWords)
	tx.Store(n+stVal, v)
	tx.StoreAddr(n+stNext, tx.LoadAddr(s.top))
	tx.StoreAddr(s.top, n)
}

// Pop removes and returns the top element.
func (s *Stack) Pop(tx *stm.Tx) (uint64, bool) {
	n := tx.LoadAddr(s.top)
	if n == stm.Nil {
		return 0, false
	}
	v := tx.Load(n + stVal)
	tx.StoreAddr(s.top, tx.LoadAddr(n+stNext))
	tx.Free(n, stNodeWords)
	return v, true
}

// Peek returns the top element without removing it.
func (s *Stack) Peek(tx *stm.Tx) (uint64, bool) {
	n := tx.LoadAddr(s.top)
	if n == stm.Nil {
		return 0, false
	}
	return tx.Load(n + stVal), true
}

// Len counts stacked elements.
func (s *Stack) Len(tx *stm.Tx) int {
	n := 0
	for x := tx.LoadAddr(s.top); x != stm.Nil; x = tx.LoadAddr(x + stNext) {
		n++
	}
	return n
}
