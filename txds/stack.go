package txds

import "repro/stm"

// Stack is a LIFO stack over a singly-linked chain. All operations fight
// over the single top-of-stack word, giving the highest possible conflict
// density per structure — every pair of concurrent operations conflicts.
//
// Nodes are typed objects (stm.Ref[stackNode]): a Pop loads the node with
// one multi-word read and a Push publishes it with one multi-word write,
// so each operation costs one footprint touch per node instead of one per
// field, and snapshot readers reconstruct nodes from the version store
// with a single index probe.
type Stack struct {
	top      stm.Addr // one word: pointer to the top node
	nodeSite stm.SiteID
}

// stackNode is the heap layout of one node. Field order mirrors the word
// offsets (stVal, stNext).
type stackNode struct {
	Val  uint64
	Next stm.Addr
}

const (
	stVal  = 0
	stNext = 1
)

// NewStack creates an empty stack with sites "<name>.top" and
// "<name>.node".
func NewStack(tx *stm.Tx, rt *stm.Runtime, name string) *Stack {
	tSite := rt.RegisterSite(name + ".top")
	nSite := rt.RegisterSite(name + ".node")
	top := tx.Alloc(tSite, 1)
	tx.StoreAddr(top, stm.Nil)
	return &Stack{top: top, nodeSite: nSite}
}

// Push adds v on top. The top→node link goes through StoreAddr so
// profiling runs see the edge.
func (s *Stack) Push(tx *stm.Tx, v uint64) {
	old := tx.LoadAddr(s.top)
	n := stm.AllocRef[stackNode](tx, s.nodeSite)
	n.Store(tx, stackNode{Val: v, Next: old})
	tx.StoreAddr(n.WordAddr(stNext), old)
	tx.StoreAddr(s.top, n.Addr())
}

// Pop removes and returns the top element.
func (s *Stack) Pop(tx *stm.Tx) (uint64, bool) {
	top := tx.LoadAddr(s.top)
	if top == stm.Nil {
		return 0, false
	}
	n := stm.RefAt[stackNode](top)
	node := n.Load(tx)
	tx.StoreAddr(s.top, node.Next)
	n.Free(tx)
	return node.Val, true
}

// Peek returns the top element without removing it.
func (s *Stack) Peek(tx *stm.Tx) (uint64, bool) {
	top := tx.LoadAddr(s.top)
	if top == stm.Nil {
		return 0, false
	}
	return stm.RefAt[stackNode](top).Load(tx).Val, true
}

// Len counts stacked elements.
func (s *Stack) Len(tx *stm.Tx) int {
	n := 0
	for x := tx.LoadAddr(s.top); x != stm.Nil; x = tx.LoadAddr(x + stNext) {
		n++
	}
	return n
}
