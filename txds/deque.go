package txds

import "repro/stm"

// Deque is a double-ended queue over a doubly-linked chain. Both ends are
// hot words (like Queue) but the two ends are distinct orecs, so
// fine-grained conflict detection lets front- and back-workers proceed in
// parallel while coarse granularity serializes them — a minimal
// illustration of the paper's granularity discussion.
//
// Nodes are typed objects (stm.Ref[dequeNode]): pushes publish the whole
// node with one multi-word write and pops load it with one multi-word
// read. The two-word meta block deliberately stays word-granular: a
// PushFront touches only the front word and a PushBack only the back
// word, so folding them into one typed object would re-serialize the two
// ends that the layout exists to keep independent.
type Deque struct {
	meta     stm.Addr // [0]=front, [1]=back
	nodeSite stm.SiteID
}

const (
	dqFront = 0
	dqBack  = 1
)

// dequeNode is the heap layout of one node. Field order mirrors the word
// offsets (dqVal, dqPrev, dqNext).
type dequeNode struct {
	Val        uint64
	Prev, Next stm.Addr
}

const (
	dqVal  = 0
	dqPrev = 1
	dqNext = 2
)

// NewDeque creates an empty deque with sites "<name>.meta" and
// "<name>.node".
func NewDeque(tx *stm.Tx, rt *stm.Runtime, name string) *Deque {
	mSite := rt.RegisterSite(name + ".meta")
	nSite := rt.RegisterSite(name + ".node")
	meta := tx.Alloc(mSite, 2)
	tx.StoreAddr(meta+dqFront, stm.Nil)
	tx.StoreAddr(meta+dqBack, stm.Nil)
	return &Deque{meta: meta, nodeSite: nSite}
}

// PushFront prepends v. The node→successor link goes through StoreAddr so
// profiling runs see the edge.
func (d *Deque) PushFront(tx *stm.Tx, v uint64) {
	front := tx.LoadAddr(d.meta + dqFront)
	n := stm.AllocRef[dequeNode](tx, d.nodeSite)
	n.Store(tx, dequeNode{Val: v, Prev: stm.Nil, Next: front})
	tx.StoreAddr(n.WordAddr(dqNext), front)
	if front == stm.Nil {
		tx.StoreAddr(d.meta+dqBack, n.Addr())
	} else {
		tx.StoreAddr(front+dqPrev, n.Addr())
	}
	tx.StoreAddr(d.meta+dqFront, n.Addr())
}

// PushBack appends v.
func (d *Deque) PushBack(tx *stm.Tx, v uint64) {
	back := tx.LoadAddr(d.meta + dqBack)
	n := stm.AllocRef[dequeNode](tx, d.nodeSite)
	n.Store(tx, dequeNode{Val: v, Prev: back, Next: stm.Nil})
	tx.StoreAddr(n.WordAddr(dqPrev), back)
	if back == stm.Nil {
		tx.StoreAddr(d.meta+dqFront, n.Addr())
	} else {
		tx.StoreAddr(back+dqNext, n.Addr())
	}
	tx.StoreAddr(d.meta+dqBack, n.Addr())
}

// PopFront removes and returns the first element.
func (d *Deque) PopFront(tx *stm.Tx) (uint64, bool) {
	front := tx.LoadAddr(d.meta + dqFront)
	if front == stm.Nil {
		return 0, false
	}
	f := stm.RefAt[dequeNode](front)
	node := f.Load(tx)
	tx.StoreAddr(d.meta+dqFront, node.Next)
	if node.Next == stm.Nil {
		tx.StoreAddr(d.meta+dqBack, stm.Nil)
	} else {
		tx.StoreAddr(node.Next+dqPrev, stm.Nil)
	}
	f.Free(tx)
	return node.Val, true
}

// PopBack removes and returns the last element.
func (d *Deque) PopBack(tx *stm.Tx) (uint64, bool) {
	back := tx.LoadAddr(d.meta + dqBack)
	if back == stm.Nil {
		return 0, false
	}
	b := stm.RefAt[dequeNode](back)
	node := b.Load(tx)
	tx.StoreAddr(d.meta+dqBack, node.Prev)
	if node.Prev == stm.Nil {
		tx.StoreAddr(d.meta+dqFront, stm.Nil)
	} else {
		tx.StoreAddr(node.Prev+dqNext, stm.Nil)
	}
	b.Free(tx)
	return node.Val, true
}

// Front returns the first element without removing it.
func (d *Deque) Front(tx *stm.Tx) (uint64, bool) {
	front := tx.LoadAddr(d.meta + dqFront)
	if front == stm.Nil {
		return 0, false
	}
	return stm.RefAt[dequeNode](front).Load(tx).Val, true
}

// Back returns the last element without removing it.
func (d *Deque) Back(tx *stm.Tx) (uint64, bool) {
	back := tx.LoadAddr(d.meta + dqBack)
	if back == stm.Nil {
		return 0, false
	}
	return stm.RefAt[dequeNode](back).Load(tx).Val, true
}

// Len counts elements front to back.
func (d *Deque) Len(tx *stm.Tx) int {
	n := 0
	for x := tx.LoadAddr(d.meta + dqFront); x != stm.Nil; x = tx.LoadAddr(x + dqNext) {
		n++
	}
	return n
}

// Values returns the elements front to back.
func (d *Deque) Values(tx *stm.Tx) []uint64 {
	var out []uint64
	for x := tx.LoadAddr(d.meta + dqFront); x != stm.Nil; {
		node := stm.RefAt[dequeNode](x).Load(tx)
		out = append(out, node.Val)
		x = node.Next
	}
	return out
}
