package txds

import "repro/stm"

// Deque is a double-ended queue over a doubly-linked chain. Both ends are
// hot words (like Queue) but the two ends are distinct orecs, so
// fine-grained conflict detection lets front- and back-workers proceed in
// parallel while coarse granularity serializes them — a minimal
// illustration of the paper's granularity discussion.
type Deque struct {
	meta     stm.Addr // [0]=front, [1]=back
	nodeSite stm.SiteID
}

const (
	dqFront = 0
	dqBack  = 1

	dqVal       = 0
	dqPrev      = 1
	dqNext      = 2
	dqNodeWords = 3
)

// NewDeque creates an empty deque with sites "<name>.meta" and
// "<name>.node".
func NewDeque(tx *stm.Tx, rt *stm.Runtime, name string) *Deque {
	mSite := rt.RegisterSite(name + ".meta")
	nSite := rt.RegisterSite(name + ".node")
	meta := tx.Alloc(mSite, 2)
	tx.StoreAddr(meta+dqFront, stm.Nil)
	tx.StoreAddr(meta+dqBack, stm.Nil)
	return &Deque{meta: meta, nodeSite: nSite}
}

// PushFront prepends v.
func (d *Deque) PushFront(tx *stm.Tx, v uint64) {
	n := tx.Alloc(d.nodeSite, dqNodeWords)
	tx.Store(n+dqVal, v)
	tx.StoreAddr(n+dqPrev, stm.Nil)
	front := tx.LoadAddr(d.meta + dqFront)
	tx.StoreAddr(n+dqNext, front)
	if front == stm.Nil {
		tx.StoreAddr(d.meta+dqBack, n)
	} else {
		tx.StoreAddr(front+dqPrev, n)
	}
	tx.StoreAddr(d.meta+dqFront, n)
}

// PushBack appends v.
func (d *Deque) PushBack(tx *stm.Tx, v uint64) {
	n := tx.Alloc(d.nodeSite, dqNodeWords)
	tx.Store(n+dqVal, v)
	tx.StoreAddr(n+dqNext, stm.Nil)
	back := tx.LoadAddr(d.meta + dqBack)
	tx.StoreAddr(n+dqPrev, back)
	if back == stm.Nil {
		tx.StoreAddr(d.meta+dqFront, n)
	} else {
		tx.StoreAddr(back+dqNext, n)
	}
	tx.StoreAddr(d.meta+dqBack, n)
}

// PopFront removes and returns the first element.
func (d *Deque) PopFront(tx *stm.Tx) (uint64, bool) {
	front := tx.LoadAddr(d.meta + dqFront)
	if front == stm.Nil {
		return 0, false
	}
	v := tx.Load(front + dqVal)
	next := tx.LoadAddr(front + dqNext)
	tx.StoreAddr(d.meta+dqFront, next)
	if next == stm.Nil {
		tx.StoreAddr(d.meta+dqBack, stm.Nil)
	} else {
		tx.StoreAddr(next+dqPrev, stm.Nil)
	}
	tx.Free(front, dqNodeWords)
	return v, true
}

// PopBack removes and returns the last element.
func (d *Deque) PopBack(tx *stm.Tx) (uint64, bool) {
	back := tx.LoadAddr(d.meta + dqBack)
	if back == stm.Nil {
		return 0, false
	}
	v := tx.Load(back + dqVal)
	prev := tx.LoadAddr(back + dqPrev)
	tx.StoreAddr(d.meta+dqBack, prev)
	if prev == stm.Nil {
		tx.StoreAddr(d.meta+dqFront, stm.Nil)
	} else {
		tx.StoreAddr(prev+dqNext, stm.Nil)
	}
	tx.Free(back, dqNodeWords)
	return v, true
}

// Front returns the first element without removing it.
func (d *Deque) Front(tx *stm.Tx) (uint64, bool) {
	front := tx.LoadAddr(d.meta + dqFront)
	if front == stm.Nil {
		return 0, false
	}
	return tx.Load(front + dqVal), true
}

// Back returns the last element without removing it.
func (d *Deque) Back(tx *stm.Tx) (uint64, bool) {
	back := tx.LoadAddr(d.meta + dqBack)
	if back == stm.Nil {
		return 0, false
	}
	return tx.Load(back + dqVal), true
}

// Len counts elements front to back.
func (d *Deque) Len(tx *stm.Tx) int {
	n := 0
	for x := tx.LoadAddr(d.meta + dqFront); x != stm.Nil; x = tx.LoadAddr(x + dqNext) {
		n++
	}
	return n
}

// Values returns the elements front to back.
func (d *Deque) Values(tx *stm.Tx) []uint64 {
	var out []uint64
	for x := tx.LoadAddr(d.meta + dqFront); x != stm.Nil; x = tx.LoadAddr(x + dqNext) {
		out = append(out, tx.Load(x+dqVal))
	}
	return out
}
